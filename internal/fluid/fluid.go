package fluid

import (
	"fmt"
	"math"

	"cloudmedia/internal/queueing"
	"cloudmedia/internal/sim"
	"cloudmedia/internal/workload"
)

// Config assembles a fluid-mode scenario. The simulation parameters are
// shared with the event engine (sim.Config); StepSeconds is the only knob
// specific to the integrator.
type Config struct {
	Sim sim.Config
	// StepSeconds is the Euler integration step. 0 uses 1 s, small enough
	// for every paper scenario (chunk playback is 75–300 s and jump
	// intervals minutes). The step is additionally clamped to a quarter of
	// the chunk playback time and of the mean jump interval so outflow
	// fractions stay well below 1.
	StepSeconds float64
}

// channel is one video channel's aggregate state: O(chunks) floats
// regardless of how many viewers the flows represent.
type channel struct {
	index int

	playing []float64 // viewers currently playing chunk j
	waiting []float64 // viewers waiting on chunk j's download
	owners  []float64 // chunk-j copies cached across current viewers

	cloudCap []float64 // Δ per chunk, bytes/s
	peerCap  []float64 // Γ per chunk, bytes/s (recomputed every step)

	cloudBytesServed float64
	smooth           float64 // windowed smooth-playback fraction
	feed             *feed

	// scratch buffers reused across steps.
	inWait []float64
	inPlay []float64
	order  []int
	demand []float64
}

func (c *channel) users() float64 {
	var n float64
	for j := range c.playing {
		n += c.playing[j] + c.waiting[j]
	}
	return n
}

// Backend integrates the fluid-cohort model. It implements sim.Backend,
// so the provisioning controller and the public run loop drive it exactly
// like the discrete-event engine. The model is fully deterministic: the
// scenario seed is ignored (there is no sampling to derive from it).
type Backend struct {
	cfg  sim.Config
	src  workload.Source // resolved demand source (trace or parametric)
	step float64

	engine *sim.Engine // control callbacks (controller intervals, boots)
	now    float64

	meanUplink float64
	channels   []*channel

	// rates is the per-step arrival-rate scratch: filled once per Euler
	// step via workload.RatesInto (one batched source query instead of one
	// Rate call per channel), then read by every stepChannel. Reused across
	// steps so steady integration stays allocation-free.
	rates []float64
}

var _ sim.Backend = (*Backend)(nil)

// New builds a fluid backend for the scenario.
func New(cfg Config) (*Backend, error) {
	sc := cfg.Sim
	// Mirror sim.New's defaulting for the parameters the fluid model uses.
	if sc.QualityWindowSeconds == 0 {
		sc.QualityWindowSeconds = 300
	}
	if sc.Scheduling == 0 {
		sc.Scheduling = sim.RarestFirst
	}
	if sc.RebalanceSeconds == 0 {
		sc.RebalanceSeconds = 30
	}
	if sc.Source != nil {
		// Mirror sim.New: the demand source owns the channel count.
		sc.Workload.Channels = sc.Source.NumChannels()
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	src := sc.Source
	if src == nil {
		src = sc.Workload.Source()
	}
	step := cfg.StepSeconds
	if step == 0 {
		step = 1
	}
	if step < 0 {
		return nil, fmt.Errorf("fluid: negative step %v", step)
	}
	if lim := sc.Channel.ChunkSeconds / 4; step > lim {
		step = lim
	}
	if lim := sc.Workload.JumpMeanSeconds / 4; step > lim {
		step = lim
	}
	b := &Backend{
		cfg:        sc,
		src:        src,
		step:       step,
		engine:     sim.NewEngine(),
		meanUplink: sc.Workload.PeerUplink.Mean(),
	}
	// Prime any lazy source caches (Zipf weights) while construction is
	// still serial.
	for c := 0; c < sc.Workload.Channels; c++ {
		if _, err := src.MaxRate(c); err != nil {
			return nil, err
		}
	}
	b.rates = make([]float64, sc.Workload.Channels)
	b.channels = make([]*channel, sc.Workload.Channels)
	for i := range b.channels {
		J := sc.Channel.Chunks
		b.channels[i] = &channel{
			index:    i,
			playing:  make([]float64, J),
			waiting:  make([]float64, J),
			owners:   make([]float64, J),
			cloudCap: make([]float64, J),
			peerCap:  make([]float64, J),
			smooth:   1,
			feed:     newFeed(J),
			inWait:   make([]float64, J),
			inPlay:   make([]float64, J),
			order:    make([]int, J),
			demand:   make([]float64, J),
		}
	}
	return b, nil
}

// Now returns the simulated clock in seconds.
func (b *Backend) Now() float64 { return b.now }

// RunUntil integrates the cohort flows to time t, pausing at every
// scheduled control event (provisioning rounds, delayed capacity
// applications) so the controller observes a settled state.
func (b *Backend) RunUntil(t float64) {
	for {
		barrier := t
		if at, ok := b.engine.NextAt(); ok && at < barrier {
			barrier = at
		}
		if b.cfg.Pacer != nil && barrier > b.now {
			b.cfg.Pacer(barrier)
		}
		b.integrateTo(barrier)
		b.engine.RunUntil(barrier)
		if barrier >= t {
			return
		}
	}
}

// integrateTo advances the ODE state to time t with fixed Euler steps.
//
//cloudmedia:hotpath
func (b *Backend) integrateTo(t float64) {
	for b.now < t {
		dt := b.step
		if b.now+dt > t {
			dt = t - b.now
		}
		// One batched rate query per step: every channel reads the same
		// instant, so the source resolves shared work (the diurnal
		// multiplier, the trace's interpolation segment) once.
		if err := workload.RatesInto(b.src, b.now, b.rates); err != nil {
			for i := range b.rates {
				b.rates[i] = 0 // unreachable: channel count matches the source
			}
		}
		for _, c := range b.channels {
			b.stepChannel(c, b.now, dt)
		}
		b.now += dt
	}
	b.now = t
}

// stepChannel advances one channel by dt seconds starting at time t.
//
//cloudmedia:hotpath
func (b *Backend) stepChannel(c *channel, t, dt float64) {
	cfg := b.cfg.Channel
	J := cfg.Chunks
	T0 := cfg.ChunkSeconds
	B := cfg.ChunkBytes()
	R := cfg.VMBandwidth
	P := b.cfg.Transfer

	n := c.users()

	// Average fraction of the library a viewer holds: the probability a
	// VCR jump lands on a cached chunk and replays without a download.
	ownedFrac := 0.0
	if n > 0 {
		var copies float64
		for _, o := range c.owners {
			copies += o
		}
		ownedFrac = copies / (n * float64(J))
		if ownedFrac > 1 {
			ownedFrac = 1
		}
	}

	for j := 0; j < J; j++ {
		c.inWait[j] = 0
		c.inPlay[j] = 0
	}

	// 1. External arrivals: chunk 1 with probability α, uniform otherwise.
	// The rate was batched into b.rates for this step by integrateTo.
	lambda := b.rates[c.index]
	arrivals := lambda * dt
	c.feed.arrivals += arrivals
	if b.cfg.OnArrivals != nil && arrivals > 0 {
		b.cfg.OnArrivals(c.index, t, arrivals)
	}
	if J == 1 {
		c.inWait[0] += arrivals
	} else {
		c.inWait[0] += arrivals * cfg.EntryFirstChunk
		rest := arrivals * (1 - cfg.EntryFirstChunk) / float64(J-1)
		for j := 1; j < J; j++ {
			c.inWait[j] += rest
		}
	}

	// 2. Playback completions flow along the transfer matrix; the
	// remainder of each row departs. Sequential successors are assumed
	// uncached (they have not been visited), so they enter the download
	// queue.
	var departures float64
	for j := 0; j < J; j++ {
		comp := c.playing[j] * dt / T0
		if comp <= 0 {
			continue
		}
		var rowSum float64
		for k := 0; k < J; k++ {
			flow := comp * P[j][k]
			if flow <= 0 {
				continue
			}
			rowSum += P[j][k]
			c.feed.transitions[j][k] += flow
			c.inWait[k] += flow
		}
		leave := comp * (1 - rowSum)
		if leave < 0 {
			leave = 0
		}
		c.feed.departures[j] += leave
		departures += leave
		c.playing[j] -= comp
	}

	// 3. VCR jumps: uniform destination; a cached destination replays
	// immediately (no download), an uncached one queues.
	jumpRate := dt / b.cfg.Workload.JumpMeanSeconds
	var jumpTotal float64
	for j := 0; j < J; j++ {
		jump := c.playing[j] * jumpRate
		if jump <= 0 {
			continue
		}
		jumpTotal += jump
		c.playing[j] -= jump
		per := jump / float64(J)
		for k := 0; k < J; k++ {
			c.feed.transitions[j][k] += per
		}
	}
	if jumpTotal > 0 {
		perHit := jumpTotal * ownedFrac / float64(J)
		perMiss := jumpTotal * (1 - ownedFrac) / float64(J)
		for k := 0; k < J; k++ {
			c.inPlay[k] += perHit
			c.inWait[k] += perMiss
		}
	}

	// 4. Remove the departing viewers' cached copies (each departing
	// viewer holds owners[j]/n of chunk j on average).
	if departures > 0 && n > 0 {
		f := departures / n
		if f > 1 {
			f = 1
		}
		for j := 0; j < J; j++ {
			c.owners[j] -= c.owners[j] * f
		}
	}

	// 5. Allocate peer uplink for this step (P2P only): the fluid
	// counterpart of the event engine's 30-second rebalance, run every
	// step because it is O(J).
	if b.cfg.Mode == sim.P2P {
		b.allocatePeers(c)
	}

	// 6. Serve the download queues: each chunk drains at the provisioned
	// capacity, bounded by a per-download rate of R. Completions move
	// viewers into the playing cohort and add cached copies.
	var demandBps, servedBps float64
	for j := 0; j < J; j++ {
		queue := c.waiting[j] + c.inWait[j]
		if queue <= 0 {
			c.waiting[j] = 0
			c.playing[j] += c.inPlay[j]
			continue
		}
		cap := c.cloudCap[j] + c.peerCap[j]
		rate := queue * R
		if rate > cap {
			rate = cap
		}
		drained := rate * dt / B
		if drained > queue {
			drained = queue
		}
		bytes := drained * B
		peerShare := math.Min(bytes, c.peerCap[j]*dt)
		c.cloudBytesServed += bytes - peerShare

		c.waiting[j] = queue - drained
		c.playing[j] += drained + c.inPlay[j]
		c.owners[j] += drained

		// Smoothness pressure: the bandwidth needed to serve this step's
		// requests plus the backlog within the chunk-playback grace
		// period, against what the capacity actually delivered.
		need := (c.inWait[j]/dt + c.waiting[j]/T0) * B
		got := need
		if cap < got {
			got = cap
		}
		demandBps += need
		servedBps += got
	}

	// 7. Windowed quality: exponential window matching the event engine's
	// trailing stall window.
	instant := 1.0
	if demandBps > 0 {
		instant = servedBps / demandBps
	}
	w := b.cfg.QualityWindowSeconds
	if w <= 0 {
		c.smooth = instant
	} else {
		a := dt / w
		if a > 1 {
			a = 1
		}
		c.smooth += a * (instant - c.smooth)
	}
}

// allocatePeers splits the channel's aggregate peer uplink across chunks,
// mirroring the event engine's rebalance: rarest-first visits chunks by
// ascending copy count; proportional splits by demand. Each chunk draws at
// most owners×meanUplink (only cached copies can upload) and at most the
// remaining budget.
//
//cloudmedia:hotpath
func (b *Backend) allocatePeers(c *channel) {
	J := len(c.peerCap)
	n := c.users()
	if n <= 0 {
		for j := 0; j < J; j++ {
			c.peerCap[j] = 0
		}
		return
	}
	R := b.cfg.Channel.VMBandwidth
	budget := n * b.meanUplink
	for j := 0; j < J; j++ {
		c.demand[j] = (c.waiting[j] + c.inWait[j]) * R
	}

	if b.cfg.Scheduling == sim.Proportional {
		var total float64
		for j := 0; j < J; j++ {
			if c.owners[j] > 0 {
				total += c.demand[j]
			}
		}
		for j := 0; j < J; j++ {
			take := 0.0
			if c.owners[j] > 0 && total > 0 {
				share := budget * c.demand[j] / total
				take = math.Min(c.demand[j], math.Min(share, c.owners[j]*b.meanUplink))
			}
			c.peerCap[j] = take
		}
		return
	}

	for j := range c.order {
		c.order[j] = j
	}
	// Allocation-free stable insertion sort: this runs every integration
	// step, so it must stay off the garbage collector (mirrors
	// sim.sortByOwners).
	for i := 1; i < J; i++ {
		v := c.order[i]
		k := i - 1
		for k >= 0 && c.owners[c.order[k]] > c.owners[v] {
			c.order[k+1] = c.order[k]
			k--
		}
		c.order[k+1] = v
	}
	for _, j := range c.order {
		take := 0.0
		if c.owners[j] > 0 && budget > 0 {
			take = math.Min(c.demand[j], math.Min(budget, c.owners[j]*b.meanUplink))
		}
		c.peerCap[j] = take
		budget -= take
	}
}

// ScheduleAt runs fn at simulated time t, with the ODE state integrated
// exactly to t.
func (b *Backend) ScheduleAt(t float64, fn func(now float64)) error {
	_, err := b.engine.Schedule(t, func() { fn(b.engine.Now()) })
	return err
}

// ScheduleRepeating runs fn at start, start+interval, start+2·interval, …
func (b *Backend) ScheduleRepeating(start, interval float64, fn func(now float64)) error {
	if interval <= 0 {
		return fmt.Errorf("fluid: non-positive repeat interval %v", interval)
	}
	var tick func()
	at := start
	tick = func() {
		fn(b.engine.Now())
		at += interval
		//cloudmedia:allow noloss -- at > now by construction, Schedule cannot fail
		_, _ = b.engine.Schedule(at, tick)
	}
	_, err := b.engine.Schedule(start, tick)
	return err
}

// Mode returns the scenario's streaming mode.
func (b *Backend) Mode() sim.Mode { return b.cfg.Mode }

// ChannelConfig returns the per-channel parameters.
func (b *Backend) ChannelConfig() queueing.Config { return b.cfg.Channel }

// Channels returns the number of channels.
func (b *Backend) Channels() int { return len(b.channels) }

// SetCloudCapacity sets the cloud share Δ for one chunk, bytes/s.
func (b *Backend) SetCloudCapacity(channel, chunk int, bytesPerSecond float64) error {
	if channel < 0 || channel >= len(b.channels) {
		return fmt.Errorf("fluid: channel %d outside [0,%d)", channel, len(b.channels))
	}
	if chunk < 0 || chunk >= b.cfg.Channel.Chunks {
		return fmt.Errorf("fluid: chunk %d outside [0,%d)", chunk, b.cfg.Channel.Chunks)
	}
	if bytesPerSecond < 0 {
		return fmt.Errorf("fluid: negative capacity %v", bytesPerSecond)
	}
	b.channels[channel].cloudCap[chunk] = bytesPerSecond
	return nil
}

// CloudCapacity returns the channel's provisioned cloud capacity, bytes/s.
func (b *Backend) CloudCapacity(channel int) (float64, error) {
	if channel < 0 || channel >= len(b.channels) {
		return 0, fmt.Errorf("fluid: channel %d outside [0,%d)", channel, len(b.channels))
	}
	var total float64
	for _, v := range b.channels[channel].cloudCap {
		total += v
	}
	return total, nil
}

// TotalCloudCapacity returns the capacity provisioned across all channels.
func (b *Backend) TotalCloudCapacity() float64 {
	var total float64
	for _, c := range b.channels {
		for _, v := range c.cloudCap {
			total += v
		}
	}
	return total
}

// CloudBytesServed returns the cumulative cloud-attributed bytes.
func (b *Backend) CloudBytesServed() float64 {
	var total float64
	for _, c := range b.channels {
		total += c.cloudBytesServed
	}
	return total
}

// ChannelCloudBytes splits CloudBytesServed by channel.
func (b *Backend) ChannelCloudBytes(channel int) (float64, error) {
	if channel < 0 || channel >= len(b.channels) {
		return 0, fmt.Errorf("fluid: channel %d outside [0,%d)", channel, len(b.channels))
	}
	return b.channels[channel].cloudBytesServed, nil
}

// Users returns the channel's viewer count, rounded to the nearest whole
// viewer.
func (b *Backend) Users(channel int) (int, error) {
	if channel < 0 || channel >= len(b.channels) {
		return 0, fmt.Errorf("fluid: channel %d outside [0,%d)", channel, len(b.channels))
	}
	return int(b.channels[channel].users() + 0.5), nil
}

// TotalUsers returns the viewer count across all channels.
func (b *Backend) TotalUsers() int {
	var n float64
	for _, c := range b.channels {
		n += c.users()
	}
	return int(n + 0.5)
}

// MeanUplink returns the population mean uplink (the distribution mean:
// cohorts do not track per-viewer draws), or 0 for an empty channel,
// matching the event engine's convention.
func (b *Backend) MeanUplink(channel int) (float64, error) {
	if channel < 0 || channel >= len(b.channels) {
		return 0, fmt.Errorf("fluid: channel %d outside [0,%d)", channel, len(b.channels))
	}
	if b.channels[channel].users() <= 0 {
		return 0, nil
	}
	return b.meanUplink, nil
}

// Estimator exposes the channel's flow-accumulator feed.
func (b *Backend) Estimator(channel int) (sim.Feed, error) {
	if channel < 0 || channel >= len(b.channels) {
		return nil, fmt.Errorf("fluid: channel %d outside [0,%d)", channel, len(b.channels))
	}
	return b.channels[channel].feed, nil
}

// SampleQuality reports the windowed smooth-playback fraction per channel
// and overall, weighted by channel population.
func (b *Backend) SampleQuality() sim.QualitySample {
	sample := sim.QualitySample{
		Time:            b.now,
		PerChannel:      make([]float64, len(b.channels)),
		UsersPerChannel: make([]int, len(b.channels)),
	}
	var weighted, total float64
	for i, c := range b.channels {
		n := c.users()
		sample.UsersPerChannel[i] = int(n + 0.5)
		if n <= 0 {
			sample.PerChannel[i] = 1
		} else {
			sample.PerChannel[i] = c.smooth
		}
		weighted += sample.PerChannel[i] * n
		total += n
	}
	if total <= 0 {
		sample.Overall = 1
	} else {
		sample.Overall = weighted / total
	}
	return sample
}
