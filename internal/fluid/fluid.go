package fluid

import (
	"fmt"
	"math"

	"cloudmedia/internal/queueing"
	"cloudmedia/internal/sim"
	"cloudmedia/internal/workload"
)

// Config assembles a fluid-mode scenario. The simulation parameters are
// shared with the event engine (sim.Config); StepSeconds is the only knob
// specific to the integrator.
type Config struct {
	Sim sim.Config
	// StepSeconds is the Euler integration step. 0 uses 1 s, small enough
	// for every paper scenario (chunk playback is 75–300 s and jump
	// intervals minutes). The step is additionally clamped to a quarter of
	// the chunk playback time and of the mean jump interval so outflow
	// fractions stay well below 1.
	StepSeconds float64
}

// batchSteps caps how many Euler steps one worker fan-out integrates
// before the pool re-synchronizes. The cap bounds the per-step rates
// scratch (batchSteps × channels floats) while still amortizing the pool
// handoff over hundreds of steps: with the default 1 s step a 24 h day
// pays ~340 handoffs instead of 86 400.
const batchSteps = 256

// Backend integrates the fluid-cohort model. It implements sim.Backend,
// so the provisioning controller and the public run loop drive it exactly
// like the discrete-event engine. The model is fully deterministic: the
// scenario seed is ignored (there is no sampling to derive from it), and
// results are bit-identical for every worker count (see integrateTo).
//
// The per-channel state lives in struct-of-arrays layout: one contiguous
// backing array per field, indexed channel*J + j. Each Euler step walks
// the arrays with unit stride, so the hot loops stay in cache regardless
// of the channel count — the state for a 64-channel day is a handful of
// small flat arrays, not a pointer chase across per-channel objects.
type Backend struct {
	cfg  sim.Config
	src  workload.Source // resolved demand source (trace or parametric)
	step float64

	engine *sim.Engine // control callbacks (controller intervals, boots)
	now    float64

	meanUplink float64

	// C channels × J chunks; every per-chunk array below has C*J entries
	// indexed channel*J + j.
	C, J int

	playing  []float64 // viewers currently playing chunk j
	waiting  []float64 // viewers waiting on chunk j's download
	owners   []float64 // chunk-j copies cached across current viewers
	cloudCap []float64 // Δ per chunk, bytes/s
	peerCap  []float64 // Γ per chunk, bytes/s (recomputed every step)

	// Scratch arrays reused across steps, same channel*J + j indexing.
	inWait []float64
	inPlay []float64
	demand []float64
	order  []int

	// Per-channel scalars (length C).
	cloudBytesServed []float64
	smooth           []float64 // windowed smooth-playback fraction
	capTotal         []float64 // cached Σ_j cloudCap, see channelCloudCap
	capDirty         []bool
	totalCap         float64 // cached Σ over all chunks, see TotalCloudCapacity
	totalCapDirty    bool
	feeds            []*feed

	// Transfer-matrix constants, precomputed once at New: the constant
	// row sums and a nonzero-entry index so the playback-completion loop
	// walks only live entries instead of scanning all J² cells. Row j's
	// nonzero destinations are nzK[nzOff[j]:nzOff[j+1]] with probabilities
	// nzP at the same positions.
	rowSum []float64
	nzOff  []int
	nzK    []int
	nzP    []float64

	// workers bounds the pool that integrates channels in parallel within
	// each batched fan-out (see Config.Workers on the shared sim.Config).
	workers int

	// Batched-step scratch: integrateTo pre-resolves up to batchSteps
	// Euler steps serially — per-step start times, step sizes, and the
	// full arrival-rate matrix rates[s*C+c] — then fans the channels out
	// over the worker pool, each integrating through the whole batch.
	rates []float64
	times []float64
	dts   []float64
}

var _ sim.Backend = (*Backend)(nil)

// New builds a fluid backend for the scenario.
func New(cfg Config) (*Backend, error) {
	sc := cfg.Sim
	// Mirror sim.New's defaulting for the parameters the fluid model uses.
	if sc.QualityWindowSeconds == 0 {
		sc.QualityWindowSeconds = 300
	}
	if sc.Scheduling == 0 {
		sc.Scheduling = sim.RarestFirst
	}
	if sc.RebalanceSeconds == 0 {
		sc.RebalanceSeconds = 30
	}
	if sc.Source != nil {
		// Mirror sim.New: the demand source owns the channel count.
		sc.Workload.Channels = sc.Source.NumChannels()
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	src := sc.Source
	if src == nil {
		src = sc.Workload.Source()
	}
	step := cfg.StepSeconds
	if step == 0 {
		step = 1
	}
	if step < 0 {
		return nil, fmt.Errorf("fluid: negative step %v", step)
	}
	if lim := sc.Channel.ChunkSeconds / 4; step > lim {
		step = lim
	}
	if lim := sc.Workload.JumpMeanSeconds / 4; step > lim {
		step = lim
	}
	C := sc.Workload.Channels
	J := sc.Channel.Chunks
	workers := sim.EffectiveWorkers(sc.Workers, C)
	b := &Backend{
		cfg:        sc,
		src:        src,
		step:       step,
		engine:     sim.NewEngine(),
		meanUplink: sc.Workload.PeerUplink.Mean(),
		C:          C,
		J:          J,
		workers:    workers,
	}
	// Prime any lazy source caches (Zipf weights) while construction is
	// still serial.
	for c := 0; c < C; c++ {
		if _, err := src.MaxRate(c); err != nil {
			return nil, err
		}
	}
	b.playing = make([]float64, C*J)
	b.waiting = make([]float64, C*J)
	b.owners = make([]float64, C*J)
	b.cloudCap = make([]float64, C*J)
	b.peerCap = make([]float64, C*J)
	b.inWait = make([]float64, C*J)
	b.inPlay = make([]float64, C*J)
	b.demand = make([]float64, C*J)
	b.order = make([]int, C*J)
	b.cloudBytesServed = make([]float64, C)
	b.smooth = make([]float64, C)
	b.capTotal = make([]float64, C)
	b.capDirty = make([]bool, C)
	b.feeds = make([]*feed, C)
	for c := 0; c < C; c++ {
		b.smooth[c] = 1
		b.feeds[c] = newFeed(J)
	}
	// Precompute the transfer matrix's constant row sums and the nonzero
	// index. The row sum accumulates live entries in ascending destination
	// order, matching the order the old per-step scan added them in, so
	// the departure flow comp·(1−rowSum) is unchanged.
	b.rowSum = make([]float64, J)
	b.nzOff = make([]int, J+1)
	for j := 0; j < J; j++ {
		b.nzOff[j] = len(b.nzK)
		for k := 0; k < J; k++ {
			if p := sc.Transfer[j][k]; p > 0 {
				b.rowSum[j] += p
				b.nzK = append(b.nzK, k)
				b.nzP = append(b.nzP, p)
			}
		}
	}
	b.nzOff[J] = len(b.nzK)
	b.rates = make([]float64, batchSteps*C)
	b.times = make([]float64, batchSteps)
	b.dts = make([]float64, batchSteps)
	return b, nil
}

// Now returns the simulated clock in seconds.
func (b *Backend) Now() float64 { return b.now }

// RunUntil integrates the cohort flows to time t, pausing at every
// scheduled control event (provisioning rounds, delayed capacity
// applications) so the controller observes a settled state.
func (b *Backend) RunUntil(t float64) {
	for {
		barrier := t
		if at, ok := b.engine.NextAt(); ok && at < barrier {
			barrier = at
		}
		if b.cfg.Pacer != nil && barrier > b.now {
			b.cfg.Pacer(barrier)
		}
		b.integrateTo(barrier)
		b.engine.RunUntil(barrier)
		if barrier >= t {
			return
		}
	}
}

// integrateTo advances the ODE state to time t with fixed Euler steps,
// batched between control barriers: up to batchSteps steps are resolved
// serially (start time and step size), the batch's arrival-rate matrix is
// filled by the parallel demand plane (fillRates), then every channel
// integrates through the whole batch on the worker pool. Channels are
// independent within a span — arrival rates are pre-batched into b.rates
// and all mutation is per-channel state — so each channel's arithmetic is
// the exact serial sequence regardless of the worker count, and
// reductions over channels stay index-ordered. Results are therefore
// bit-identical for any Workers value.
//
//cloudmedia:hotpath
func (b *Backend) integrateTo(t float64) {
	for b.now < t {
		now := b.now
		n := 0
		for now < t && n < batchSteps {
			dt := b.step
			if now+dt > t {
				dt = t - now
			}
			b.times[n] = now
			b.dts[n] = dt
			now += dt
			n++
		}
		b.fillRates(n)
		b.runBatch(n)
		b.now = now
	}
	b.now = t
}

// fillRates resolves the batch's arrival-rate matrix — the demand plane.
// Each step s gets one batched source query at its start time, writing
// the disjoint row b.rates[s*C:(s+1)*C]; batching per step (rather than
// per channel) keeps the source's shared-work fast path (the diurnal
// multiplier, the trace's interpolation segment) resolved once per
// instant. Steps are fanned over the worker pool: rows are disjoint and
// sources are read-only after construction (see workload.BatchSource), so
// every row holds exactly the bytes the serial loop would produce and the
// fan-out is deterministic by construction. The serial branch runs before
// the closure is built, so the workers==1 path stays allocation-free
// (mirroring runBatch, the fan-out wrapper itself carries no hotpath
// annotation — the hot body is fillRate).
func (b *Backend) fillRates(n int) {
	if b.workers <= 1 || n == 1 {
		for s := 0; s < n; s++ {
			b.fillRate(s)
		}
		return
	}
	sim.FanOut(b.workers, n, func(s int) {
		b.fillRate(s)
	})
}

// fillRate resolves one step's rate row — the demand plane's per-shard
// kernel, called once per step from fillRates' serial loop or its worker
// pool.
//
//cloudmedia:hotpath
func (b *Backend) fillRate(s int) {
	if err := workload.RatesInto(b.src, b.times[s], b.rates[s*b.C:(s+1)*b.C]); err != nil {
		b.zeroRates(s)
	}
}

// zeroRates clears one step's rate row. Unreachable in practice — the
// channel count always matches the source — but hoisted out of the hot
// loop so the annotated body stays allocation-free.
func (b *Backend) zeroRates(step int) {
	row := b.rates[step*b.C : (step+1)*b.C]
	for i := range row {
		row[i] = 0
	}
}

// runBatch integrates every channel through the first n pre-resolved
// steps, fanning the channels out over the worker pool. Workers share
// only read-only state (the rates/times/dts scratch, the transfer
// constants); every mutable array is partitioned by channel, so the
// shards never touch the same cache line's worth of state twice. The
// serial branch (effective workers == 1: explicit Workers==1, a
// single-core host, or one channel) runs on the calling goroutine before
// the fan-out closure is built, keeping that path allocation- and
// goroutine-free.
func (b *Backend) runBatch(n int) {
	if b.workers <= 1 || b.C == 1 {
		for c := 0; c < b.C; c++ {
			b.integrateChannel(c, n)
		}
		return
	}
	sim.FanOut(b.workers, b.C, func(c int) {
		b.integrateChannel(c, n)
	})
}

// integrateChannel advances one channel through the batch's n steps —
// the per-worker inner loop. All state it touches is the channel's own
// slice [c*J, (c+1)*J) of the backing arrays, plus the channel's feed and
// scalars — nothing shared with other channels, which is what lets
// runBatch shard channels across workers. The per-step work stays in
// stepChannel rather than being flattened into this loop: the fused
// kernel's live set already fills the register file, and widening its
// scope to batch-lifetime locals pushes the hot inner loops into stack
// spills (measured ~10% slower on FluidMillionViewers).
func (b *Backend) integrateChannel(c, n int) {
	for s := 0; s < n; s++ {
		b.stepChannel(c, b.times[s], b.dts[s], b.rates[s*b.C+c])
	}
}

// channelUsers returns the viewer stock of one channel.
func (b *Backend) channelUsers(c int) float64 {
	var n float64
	base := c * b.J
	for j := 0; j < b.J; j++ {
		n += b.playing[base+j] + b.waiting[base+j]
	}
	return n
}

// stepChannel advances one channel by dt seconds starting at time t, with
// external arrival rate lambda (pre-batched by integrateTo) — the
// engine's fused kernel. It allocates nothing: all state and scratch was
// sized at New.
//
// Everything invariant within the step is hoisted out of the per-chunk
// loops — config scalars, int→float conversions, the channel's slice
// headers — and the old per-step passes are fused: one loop computes the
// viewer stock and cached-copy sum, the clear pass is folded into
// arrival seeding (direct stores replace clear-then-add), and playback
// completions and VCR jumps share one loop carrying playing[j] in a
// local — without reordering a single float operation. Every memory cell
// and every scalar accumulator sees the exact per-step sequence the
// unfused passes produced, which is what keeps goldens and the
// fluid-vs-event cross-validation unchanged.
//
//cloudmedia:hotpath
func (b *Backend) stepChannel(c int, t, dt, lambda float64) {
	cfg := b.cfg.Channel
	J := b.J
	base := c * J
	T0 := cfg.ChunkSeconds
	B := cfg.ChunkBytes()
	R := cfg.VMBandwidth
	fJ := float64(J)

	playing := b.playing[base : base+J]
	waiting := b.waiting[base : base+J]
	owners := b.owners[base : base+J]
	cloudCap := b.cloudCap[base : base+J]
	peerCap := b.peerCap[base : base+J]
	inWait := b.inWait[base : base+J]
	inPlay := b.inPlay[base : base+J]
	feed := b.feeds[c]

	// Viewer stock and cached-copy sum, fused into one pass. Each
	// accumulator keeps its own index-ordered sequence; the copy sum is
	// simply discarded for an empty channel.
	var stock, copies float64
	for j := 0; j < J; j++ {
		stock += playing[j] + waiting[j]
		copies += owners[j]
	}
	// Average fraction of the library a viewer holds: the probability a
	// VCR jump lands on a cached chunk and replays without a download.
	ownedFrac := 0.0
	if stock > 0 {
		ownedFrac = copies / (stock * fJ)
		if ownedFrac > 1 {
			ownedFrac = 1
		}
	}

	// 1. External arrivals: chunk 1 with probability α, uniform
	// otherwise. Seeding stores directly, absorbing the old clear pass
	// (rates are non-negative, so 0+x and x are the same value).
	arrivals := lambda * dt
	feed.arrivals += arrivals
	if b.cfg.OnArrivals != nil && arrivals > 0 {
		b.cfg.OnArrivals(c, t, arrivals)
	}
	if J == 1 {
		inWait[0] = arrivals
		inPlay[0] = 0
	} else {
		entry := cfg.EntryFirstChunk
		inWait[0] = arrivals * entry
		inPlay[0] = 0
		rest := arrivals * (1 - entry) / float64(J-1)
		for j := 1; j < J; j++ {
			inWait[j] = rest
			inPlay[j] = 0
		}
	}

	// 2+3. Playback completions and VCR jumps, fused: completions flow
	// along the transfer matrix's live entries (precomputed nonzero
	// index; the constant row sum replaces per-step accumulation) with
	// the remainder departing, then the same chunk's jump outflow leaves
	// from the post-completion stock — exactly the value the separate
	// jump pass used to read, carried here in a register instead of
	// re-loaded. Cross-chunk state (inWait scatter, transition rows) is
	// only ever touched by its own chunk's iteration in both orderings,
	// so fusion changes no accumulation order.
	transitions := feed.transitions
	jumpRate := dt / b.cfg.Workload.JumpMeanSeconds
	var departures, jumpTotal float64
	for j := 0; j < J; j++ {
		p := playing[j]
		comp := p * dt / T0
		if comp > 0 {
			row := j * J
			for i := b.nzOff[j]; i < b.nzOff[j+1]; i++ {
				k := b.nzK[i]
				flow := comp * b.nzP[i]
				transitions[row+k] += flow
				inWait[k] += flow
			}
			leave := comp * (1 - b.rowSum[j])
			if leave < 0 {
				leave = 0
			}
			feed.departures[j] += leave
			departures += leave
			p -= comp
		}
		// Uniform jump destination; a cached destination replays
		// immediately (no download), an uncached one queues.
		jump := p * jumpRate
		if jump > 0 {
			jumpTotal += jump
			p -= jump
			per := jump / fJ
			trow := transitions[j*J : (j+1)*J]
			for k := 0; k < J; k++ {
				trow[k] += per
			}
		}
		playing[j] = p
	}
	if jumpTotal > 0 {
		perHit := jumpTotal * ownedFrac / fJ
		perMiss := jumpTotal * (1 - ownedFrac) / fJ
		for k := 0; k < J; k++ {
			inPlay[k] += perHit
			inWait[k] += perMiss
		}
	}

	// 4. Remove the departing viewers' cached copies (each departing
	// viewer holds owners[j]/stock of chunk j on average).
	if departures > 0 && stock > 0 {
		f := departures / stock
		if f > 1 {
			f = 1
		}
		for j := 0; j < J; j++ {
			owners[j] -= owners[j] * f
		}
	}

	// 5. Allocate peer uplink for this step (P2P only): the fluid
	// counterpart of the event engine's 30-second rebalance, run every
	// step because it is O(J).
	if b.cfg.Mode == sim.P2P {
		b.allocatePeers(c)
	}

	// 6. Serve the download queues: each chunk drains at the provisioned
	// capacity, bounded by a per-download rate of R. Completions move
	// viewers into the playing cohort and add cached copies.
	served := b.cloudBytesServed[c]
	var demandBps, servedBps float64
	for j := 0; j < J; j++ {
		queue := waiting[j] + inWait[j]
		if queue <= 0 {
			waiting[j] = 0
			playing[j] += inPlay[j]
			continue
		}
		capJ := cloudCap[j] + peerCap[j]
		rate := queue * R
		if rate > capJ {
			rate = capJ
		}
		drained := rate * dt / B
		if drained > queue {
			drained = queue
		}
		bytes := drained * B
		peerShare := math.Min(bytes, peerCap[j]*dt)
		served += bytes - peerShare

		waiting[j] = queue - drained
		playing[j] += drained + inPlay[j]
		owners[j] += drained

		// Smoothness pressure: the bandwidth needed to serve this step's
		// requests plus the backlog within the chunk-playback grace
		// period, against what the capacity actually delivered.
		need := (inWait[j]/dt + waiting[j]/T0) * B
		got := need
		if capJ < got {
			got = capJ
		}
		demandBps += need
		servedBps += got
	}
	b.cloudBytesServed[c] = served

	// 7. Windowed quality: exponential window matching the event engine's
	// trailing stall window.
	instant := 1.0
	if demandBps > 0 {
		instant = servedBps / demandBps
	}
	w := b.cfg.QualityWindowSeconds
	if w <= 0 {
		b.smooth[c] = instant
	} else {
		a := dt / w
		if a > 1 {
			a = 1
		}
		b.smooth[c] += a * (instant - b.smooth[c])
	}
}

// allocatePeers splits the channel's aggregate peer uplink across chunks,
// mirroring the event engine's rebalance: rarest-first visits chunks by
// ascending copy count; proportional splits by demand. Each chunk draws at
// most owners×meanUplink (only cached copies can upload) and at most the
// remaining budget. The viewer stock is re-read here — mid-step, after
// completions and jumps drained the playing cohorts — because the uplink
// budget must reflect the viewers actually present while the queues drain.
//
//cloudmedia:hotpath
func (b *Backend) allocatePeers(c int) {
	J := b.J
	base := c * J
	peerCap := b.peerCap[base : base+J]
	n := b.channelUsers(c)
	if n <= 0 {
		for j := 0; j < J; j++ {
			peerCap[j] = 0
		}
		return
	}
	waiting := b.waiting[base : base+J]
	owners := b.owners[base : base+J]
	inWait := b.inWait[base : base+J]
	demand := b.demand[base : base+J]
	order := b.order[base : base+J]
	R := b.cfg.Channel.VMBandwidth
	budget := n * b.meanUplink
	for j := 0; j < J; j++ {
		demand[j] = (waiting[j] + inWait[j]) * R
	}

	if b.cfg.Scheduling == sim.Proportional {
		var total float64
		for j := 0; j < J; j++ {
			if owners[j] > 0 {
				total += demand[j]
			}
		}
		for j := 0; j < J; j++ {
			take := 0.0
			if owners[j] > 0 && total > 0 {
				share := budget * demand[j] / total
				take = math.Min(demand[j], math.Min(share, owners[j]*b.meanUplink))
			}
			peerCap[j] = take
		}
		return
	}

	for j := range order {
		order[j] = j
	}
	// Allocation-free stable insertion sort: this runs every integration
	// step, so it must stay off the garbage collector (mirrors
	// sim.sortByOwners).
	for i := 1; i < J; i++ {
		v := order[i]
		k := i - 1
		for k >= 0 && owners[order[k]] > owners[v] {
			order[k+1] = order[k]
			k--
		}
		order[k+1] = v
	}
	for _, j := range order {
		take := 0.0
		if owners[j] > 0 && budget > 0 {
			take = math.Min(demand[j], math.Min(budget, owners[j]*b.meanUplink))
		}
		peerCap[j] = take
		budget -= take
	}
}

// ScheduleAt runs fn at simulated time t, with the ODE state integrated
// exactly to t.
func (b *Backend) ScheduleAt(t float64, fn func(now float64)) error {
	_, err := b.engine.Schedule(t, func() { fn(b.engine.Now()) })
	return err
}

// ScheduleRepeating runs fn at start, start+interval, start+2·interval, …
func (b *Backend) ScheduleRepeating(start, interval float64, fn func(now float64)) error {
	if interval <= 0 {
		return fmt.Errorf("fluid: non-positive repeat interval %v", interval)
	}
	var tick func()
	at := start
	tick = func() {
		fn(b.engine.Now())
		at += interval
		//cloudmedia:allow noloss -- at > now by construction, Schedule cannot fail
		_, _ = b.engine.Schedule(at, tick)
	}
	_, err := b.engine.Schedule(start, tick)
	return err
}

// Mode returns the scenario's streaming mode.
func (b *Backend) Mode() sim.Mode { return b.cfg.Mode }

// ChannelConfig returns the per-channel parameters.
func (b *Backend) ChannelConfig() queueing.Config { return b.cfg.Channel }

// Channels returns the number of channels.
func (b *Backend) Channels() int { return b.C }

// SetCloudCapacity sets the cloud share Δ for one chunk, bytes/s.
func (b *Backend) SetCloudCapacity(channel, chunk int, bytesPerSecond float64) error {
	if channel < 0 || channel >= b.C {
		return fmt.Errorf("fluid: channel %d outside [0,%d)", channel, b.C)
	}
	if chunk < 0 || chunk >= b.J {
		return fmt.Errorf("fluid: chunk %d outside [0,%d)", chunk, b.J)
	}
	if bytesPerSecond < 0 {
		return fmt.Errorf("fluid: negative capacity %v", bytesPerSecond)
	}
	b.cloudCap[channel*b.J+chunk] = bytesPerSecond
	b.capDirty[channel] = true
	b.totalCapDirty = true
	return nil
}

// channelCloudCap returns the channel's provisioned cloud total from the
// per-channel cache, recomputing it only after SetCloudCapacity writes.
// The controller writes all J chunks of a channel per interval and then
// reads totals repeatedly; the cache turns those reads O(1) amortized
// instead of re-summing O(J) per read. Recomputation walks the chunks in
// index order, so the cached value is bit-identical to a fresh sum.
func (b *Backend) channelCloudCap(c int) float64 {
	if b.capDirty[c] {
		var total float64
		base := c * b.J
		for j := 0; j < b.J; j++ {
			total += b.cloudCap[base+j]
		}
		b.capTotal[c] = total
		b.capDirty[c] = false
	}
	return b.capTotal[c]
}

// CloudCapacity returns the channel's provisioned cloud capacity, bytes/s.
func (b *Backend) CloudCapacity(channel int) (float64, error) {
	if channel < 0 || channel >= b.C {
		return 0, fmt.Errorf("fluid: channel %d outside [0,%d)", channel, b.C)
	}
	return b.channelCloudCap(channel), nil
}

// TotalCloudCapacity returns the capacity provisioned across all channels.
// The total is cached across reads and recomputed only after a
// SetCloudCapacity write, as one index-ordered pass over the flat backing
// array — the same single accumulator a fresh nested sum would use, so the
// cached value is bit-identical to the uncached one.
func (b *Backend) TotalCloudCapacity() float64 {
	if b.totalCapDirty {
		var total float64
		for _, v := range b.cloudCap {
			total += v
		}
		b.totalCap = total
		b.totalCapDirty = false
	}
	return b.totalCap
}

// CloudBytesServed returns the cumulative cloud-attributed bytes. Byte
// counters are per-channel (each channel's worker owns its own
// accumulator), so the total is their sum in channel order.
func (b *Backend) CloudBytesServed() float64 {
	var total float64
	for c := 0; c < b.C; c++ {
		total += b.cloudBytesServed[c]
	}
	return total
}

// ChannelCloudBytes splits CloudBytesServed by channel.
func (b *Backend) ChannelCloudBytes(channel int) (float64, error) {
	if channel < 0 || channel >= b.C {
		return 0, fmt.Errorf("fluid: channel %d outside [0,%d)", channel, b.C)
	}
	return b.cloudBytesServed[channel], nil
}

// Users returns the channel's viewer count, rounded to the nearest whole
// viewer.
func (b *Backend) Users(channel int) (int, error) {
	if channel < 0 || channel >= b.C {
		return 0, fmt.Errorf("fluid: channel %d outside [0,%d)", channel, b.C)
	}
	return int(b.channelUsers(channel) + 0.5), nil
}

// TotalUsers returns the viewer count across all channels.
func (b *Backend) TotalUsers() int {
	var n float64
	for c := 0; c < b.C; c++ {
		n += b.channelUsers(c)
	}
	return int(n + 0.5)
}

// MeanUplink returns the population mean uplink (the distribution mean:
// cohorts do not track per-viewer draws), or 0 for an empty channel,
// matching the event engine's convention.
func (b *Backend) MeanUplink(channel int) (float64, error) {
	if channel < 0 || channel >= b.C {
		return 0, fmt.Errorf("fluid: channel %d outside [0,%d)", channel, b.C)
	}
	if b.channelUsers(channel) <= 0 {
		return 0, nil
	}
	return b.meanUplink, nil
}

// Estimator exposes the channel's flow-accumulator feed.
func (b *Backend) Estimator(channel int) (sim.Feed, error) {
	if channel < 0 || channel >= b.C {
		return nil, fmt.Errorf("fluid: channel %d outside [0,%d)", channel, b.C)
	}
	return b.feeds[channel], nil
}

// SampleQuality reports the windowed smooth-playback fraction per channel
// and overall, weighted by channel population.
func (b *Backend) SampleQuality() sim.QualitySample {
	sample := sim.QualitySample{
		Time:            b.now,
		PerChannel:      make([]float64, b.C),
		UsersPerChannel: make([]int, b.C),
	}
	var weighted, total float64
	for c := 0; c < b.C; c++ {
		n := b.channelUsers(c)
		sample.UsersPerChannel[c] = int(n + 0.5)
		if n <= 0 {
			sample.PerChannel[c] = 1
		} else {
			sample.PerChannel[c] = b.smooth[c]
		}
		weighted += sample.PerChannel[c] * n
		total += n
	}
	if total <= 0 {
		sample.Overall = 1
	} else {
		sample.Overall = weighted / total
	}
	return sample
}
