package fluid

import (
	"math"
	"testing"

	"cloudmedia/internal/sim"
	"cloudmedia/internal/testutil"
)

// smallConfig mirrors the event engine's test scenario: 2 channels of 5
// chunks, 10-second chunks, steady arrivals.
func smallConfig(t *testing.T, mode sim.Mode) Config {
	t.Helper()
	chCfg := testutil.ChannelConfig(5, 10)
	chCfg.VMBandwidth = 250e3
	return Config{Sim: sim.Config{
		Mode:     mode,
		Channel:  chCfg,
		Workload: testutil.FlatWorkload(2, 0.2, 120),
		Transfer: testutil.Sequential(t, chCfg.Chunks, 0.9),
		Seed:     1,
	}}
}

func provisionGenerously(t *testing.T, b *Backend) {
	t.Helper()
	for c := 0; c < b.Channels(); c++ {
		for i := 0; i < b.ChannelConfig().Chunks; i++ {
			if err := b.SetCloudCapacity(c, i, 100e6); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestPopulationBalance: the viewer stock must equal the integral of
// arrival flow minus departure flow — the fluid continuity equation.
func TestPopulationBalance(t *testing.T) {
	b, err := New(smallConfig(t, sim.ClientServer))
	if err != nil {
		t.Fatal(err)
	}
	provisionGenerously(t, b)
	const horizon = 3600.0
	b.RunUntil(horizon)

	var arrived, departed, stock float64
	for c := 0; c < b.C; c++ {
		arrived += b.feeds[c].arrivals
		for _, d := range b.feeds[c].departures {
			departed += d
		}
		stock += b.channelUsers(c)
	}
	if arrived <= 0 {
		t.Fatal("no arrival flow accumulated")
	}
	if diff := math.Abs(arrived - departed - stock); diff > 1e-6*arrived {
		t.Errorf("continuity violated: arrived %v − departed %v ≠ stock %v (diff %v)",
			arrived, departed, stock, diff)
	}
}

// TestCloudBytesNeverExceedCapacityIntegral mirrors the event engine's
// conservation test: with constant capacity C per chunk over T seconds,
// the cloud cannot serve more than C·T·pools bytes.
func TestCloudBytesNeverExceedCapacityIntegral(t *testing.T) {
	b, err := New(smallConfig(t, sim.ClientServer))
	if err != nil {
		t.Fatal(err)
	}
	const perChunk = 400e3
	for c := 0; c < b.Channels(); c++ {
		for i := 0; i < b.ChannelConfig().Chunks; i++ {
			if err := b.SetCloudCapacity(c, i, perChunk); err != nil {
				t.Fatal(err)
			}
		}
	}
	const horizon = 1800.0
	b.RunUntil(horizon)
	served := b.CloudBytesServed()
	bound := perChunk * float64(b.Channels()*b.ChannelConfig().Chunks) * horizon
	if served > bound+1e-6 {
		t.Errorf("served %v exceeds capacity integral %v", served, bound)
	}
	if served <= 0 {
		t.Error("no bytes served")
	}
}

// TestP2PCloudAttributionBounded: cloud-attributed bytes can never exceed
// the cloud capacity integral, regardless of peer supply.
func TestP2PCloudAttributionBounded(t *testing.T) {
	b, err := New(smallConfig(t, sim.P2P))
	if err != nil {
		t.Fatal(err)
	}
	const perChunk = 200e3
	for c := 0; c < b.Channels(); c++ {
		for i := 0; i < b.ChannelConfig().Chunks; i++ {
			if err := b.SetCloudCapacity(c, i, perChunk); err != nil {
				t.Fatal(err)
			}
		}
	}
	const horizon = 1800.0
	b.RunUntil(horizon)
	bound := perChunk * float64(b.Channels()*b.ChannelConfig().Chunks) * horizon
	if served := b.CloudBytesServed(); served > bound+1e-6 {
		t.Errorf("cloud-attributed bytes %v exceed cloud capacity integral %v", served, bound)
	}
}

// TestDeterminism: the fluid model has no randomness — two backends over
// the same scenario must agree bit for bit.
func TestDeterminism(t *testing.T) {
	run := func() (float64, float64, int) {
		b, err := New(smallConfig(t, sim.P2P))
		if err != nil {
			t.Fatal(err)
		}
		provisionGenerously(t, b)
		b.RunUntil(7200)
		q := b.SampleQuality()
		return q.Overall, b.CloudBytesServed(), b.TotalUsers()
	}
	q1, bytes1, n1 := run()
	q2, bytes2, n2 := run()
	if q1 != q2 || bytes1 != bytes2 || n1 != n2 {
		t.Errorf("runs differ: (%v,%v,%d) vs (%v,%v,%d)", q1, bytes1, n1, q2, bytes2, n2)
	}
}

// TestGenerousCapacityGivesSmoothPlayback and its starved counterpart pin
// the quality metric's direction.
func TestGenerousCapacityGivesSmoothPlayback(t *testing.T) {
	b, err := New(smallConfig(t, sim.ClientServer))
	if err != nil {
		t.Fatal(err)
	}
	provisionGenerously(t, b)
	b.RunUntil(900)
	if q := b.SampleQuality(); q.Overall < 0.99 {
		t.Errorf("quality %v with generous capacity, want ≈1", q.Overall)
	}
}

func TestStarvedCapacityCausesStalls(t *testing.T) {
	b, err := New(smallConfig(t, sim.ClientServer))
	if err != nil {
		t.Fatal(err)
	}
	// No capacity at all: every download starves.
	b.RunUntil(900)
	q := b.SampleQuality()
	if q.Overall > 0.5 {
		t.Errorf("quality %v with zero capacity, want low", q.Overall)
	}
	if b.TotalUsers() == 0 {
		t.Error("starved channel lost its viewers")
	}
	for _, v := range q.PerChannel {
		if v < 0 || v > 1 {
			t.Errorf("per-channel quality %v outside [0,1]", v)
		}
	}
}

// TestFeedMatrixNormalized: the flow-accumulator feed must hand the
// controller a valid transfer matrix.
func TestFeedMatrixNormalized(t *testing.T) {
	b, err := New(smallConfig(t, sim.ClientServer))
	if err != nil {
		t.Fatal(err)
	}
	provisionGenerously(t, b)
	b.RunUntil(1800)
	feed, err := b.Estimator(0)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := feed.ArrivalRate(1800)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Error("no arrival rate observed")
	}
	m, err := feed.Matrix(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("feed matrix invalid: %v", err)
	}
	var forward float64
	for i := 0; i+1 < len(m); i++ {
		forward += m[i][i+1]
	}
	if forward == 0 {
		t.Error("no forward transition mass observed")
	}
	feed.Reset()
	if r, _ := feed.ArrivalRate(1800); r != 0 {
		t.Errorf("arrival rate %v after Reset, want 0", r)
	}
}

// TestFluidCapacityCacheTracksWrites: the cached capacity totals must
// track SetCloudCapacity writes exactly, and cache hits must not allocate
// (the controller reads totals every sample).
func TestFluidCapacityCacheTracksWrites(t *testing.T) {
	b, err := New(smallConfig(t, sim.ClientServer))
	if err != nil {
		t.Fatal(err)
	}
	check := func(context string) {
		t.Helper()
		var want float64
		for c := 0; c < b.C; c++ {
			got, err := b.CloudCapacity(c)
			if err != nil {
				t.Fatal(err)
			}
			var fresh float64
			for j := 0; j < b.J; j++ {
				fresh += b.cloudCap[c*b.J+j]
			}
			if got != fresh {
				t.Errorf("%s: channel %d cached capacity %v != fresh sum %v", context, c, got, fresh)
			}
			want += got
		}
		if got := b.TotalCloudCapacity(); got != want {
			t.Errorf("%s: total capacity %v != sum of channels %v", context, got, want)
		}
	}
	check("initial")
	for c := 0; c < b.C; c++ {
		for j := 0; j < b.J; j++ {
			if err := b.SetCloudCapacity(c, j, float64(100*(c+1)+j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	check("after full provisioning")
	if err := b.SetCloudCapacity(1, 3, 7.5); err != nil {
		t.Fatal(err)
	}
	check("after single-chunk overwrite")
	b.RunUntil(120)
	check("after integration")

	var sink float64
	allocs := testing.AllocsPerRun(50, func() {
		sink += b.TotalCloudCapacity()
		for c := 0; c < b.C; c++ {
			v, _ := b.CloudCapacity(c)
			sink += v
		}
	})
	if allocs != 0 {
		t.Errorf("capacity reads allocate %.0f objects, want 0 (sink %v)", allocs, sink)
	}
}

// TestScheduleBarriers: callbacks see the ODE state integrated exactly to
// their timestamp, and repeating callbacks fire on schedule.
func TestScheduleBarriers(t *testing.T) {
	b, err := New(smallConfig(t, sim.ClientServer))
	if err != nil {
		t.Fatal(err)
	}
	provisionGenerously(t, b)
	var fires []float64
	if err := b.ScheduleRepeating(100, 100, func(now float64) {
		fires = append(fires, now)
		if b.Now() != now {
			t.Errorf("callback at %v sees clock %v", now, b.Now())
		}
	}); err != nil {
		t.Fatal(err)
	}
	b.RunUntil(350)
	if len(fires) != 3 {
		t.Fatalf("fired %d times in 350 s with period 100, want 3", len(fires))
	}
}
