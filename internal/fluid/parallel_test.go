package fluid

import (
	"reflect"
	"runtime"
	"testing"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/queueing"
	"cloudmedia/internal/sim"
	"cloudmedia/internal/viewing"
	"cloudmedia/internal/workload"
)

// ensureParallelHost raises GOMAXPROCS so multi-worker configurations
// resolve to real pools even on single-core hosts (sim.EffectiveWorkers
// clamps to GOMAXPROCS at construction time), restoring it on cleanup.
func ensureParallelHost(t *testing.T, procs int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// paperConfig mirrors experiments.DefaultScenario's engine-facing half (6
// Zipf channels with diurnal arrivals and flash crowds, 8×75 s chunks, VCR
// jumps every 225 s) without importing the experiments package — the
// paper-figure scenario the worker-count invariance contract is pinned on.
func paperConfig(t *testing.T, mode sim.Mode, workers int) Config {
	t.Helper()
	wl := workload.Default()
	wl.Channels = 6
	wl.ZipfExponent = 0.8
	wl.BaseArrivalRate = 0.6
	wl.JumpMeanSeconds = 225
	transfer, err := viewing.SequentialWithJumps(8, 0.9, 1.0/3)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Sim: sim.Config{
		Mode: mode,
		Channel: queueing.Config{
			Chunks:          8,
			PlaybackRate:    50e3,
			ChunkSeconds:    75,
			VMBandwidth:     cloud.DefaultVMBandwidth,
			EntryFirstChunk: 0.7,
			SlotsPerVM:      5,
		},
		Workload: wl,
		Transfer: transfer,
		Workers:  workers,
		Seed:     42,
	}}
}

// fluidState is the complete observable state of a run, snapshotted for
// exact comparison across worker counts.
type fluidState struct {
	Playing, Waiting, Owners []float64
	CloudBytes, Smooth       []float64
	Arrivals                 []float64
	Transitions              [][]float64
	Departures               [][]float64
	Quality                  sim.QualitySample
	TotalUsers               int
	TotalServed              float64
	TotalCap                 float64
}

func snapshot(b *Backend) fluidState {
	st := fluidState{
		Playing:     append([]float64(nil), b.playing...),
		Waiting:     append([]float64(nil), b.waiting...),
		Owners:      append([]float64(nil), b.owners...),
		CloudBytes:  append([]float64(nil), b.cloudBytesServed...),
		Smooth:      append([]float64(nil), b.smooth...),
		Quality:     b.SampleQuality(),
		TotalUsers:  b.TotalUsers(),
		TotalServed: b.CloudBytesServed(),
		TotalCap:    b.TotalCloudCapacity(),
	}
	for c := 0; c < b.C; c++ {
		st.Arrivals = append(st.Arrivals, b.feeds[c].arrivals)
		st.Transitions = append(st.Transitions, append([]float64(nil), b.feeds[c].transitions...))
		st.Departures = append(st.Departures, append([]float64(nil), b.feeds[c].departures...))
	}
	return st
}

// runWithWorkers integrates the paper scenario for six simulated hours with
// mid-run capacity writes (the controller's rhythm) and returns the full
// final state.
func runWithWorkers(t *testing.T, mode sim.Mode, workers int) fluidState {
	t.Helper()
	b, err := New(paperConfig(t, mode, workers))
	if err != nil {
		t.Fatal(err)
	}
	provision := func(scale float64) func(float64) {
		return func(float64) {
			for c := 0; c < b.Channels(); c++ {
				for j := 0; j < b.ChannelConfig().Chunks; j++ {
					if err := b.SetCloudCapacity(c, j, scale*(1+float64(c))*100e3); err != nil {
						t.Error(err)
					}
				}
			}
		}
	}
	provision(1)(0)
	// Re-provision hourly, like the controller would, so the invariance
	// check covers capacity writes interleaved with parallel integration.
	if err := b.ScheduleRepeating(3600, 3600, func(now float64) { provision(now / 7200)(now) }); err != nil {
		t.Fatal(err)
	}
	b.RunUntil(6 * 3600)
	return snapshot(b)
}

// TestFluidParallelSteppingMatchesSerial pins the tentpole guarantee: the
// fluid engine's results are bit-identical for every worker count. Every
// float of engine state must match exactly — parallelism is a throughput
// knob, never a behaviour knob.
func TestFluidParallelSteppingMatchesSerial(t *testing.T) {
	ensureParallelHost(t, 8) // resolve multi-worker configs to real pools on any host
	for _, mode := range []sim.Mode{sim.ClientServer, sim.P2P} {
		serial := runWithWorkers(t, mode, 1)
		if serial.TotalUsers == 0 {
			t.Fatalf("mode %v: serial run produced no viewers", mode)
		}
		for _, workers := range []int{4, 8} {
			parallel := runWithWorkers(t, mode, workers)
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("mode %v: Workers=%d state diverged from serial", mode, workers)
			}
		}
	}
}

// TestFluidParallelOnArrivalsContract documents and enforces the hook
// contract the event engine pins: OnArrivals calls for one channel are
// serialized (times strictly nondecreasing per channel), while different
// channels may call concurrently from the pool workers — so a per-channel
// observer needs no locking. Run under -race (make race / CI) this is the
// fluid pool's data-race canary.
func TestFluidParallelOnArrivalsContract(t *testing.T) {
	ensureParallelHost(t, 8)
	cfg := paperConfig(t, sim.ClientServer, 4)
	type channelLog struct {
		times []float64
		mass  float64
	}
	logs := make([]channelLog, cfg.Sim.Workload.Channels)
	cfg.Sim.OnArrivals = func(channel int, at, n float64) {
		// Per-channel state only, no mutex: exactly what the contract
		// permits. The race detector fails this test if two workers ever
		// call for the same channel concurrently.
		l := &logs[channel]
		l.times = append(l.times, at)
		l.mass += n
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < b.Channels(); c++ {
		for j := 0; j < b.ChannelConfig().Chunks; j++ {
			if err := b.SetCloudCapacity(c, j, 1e6); err != nil {
				t.Fatal(err)
			}
		}
	}
	b.RunUntil(2 * 3600)
	for c := range logs {
		if logs[c].mass <= 0 {
			t.Errorf("channel %d: no arrival mass observed", c)
		}
		for i := 1; i < len(logs[c].times); i++ {
			if logs[c].times[i] < logs[c].times[i-1] {
				t.Fatalf("channel %d: hook times went backwards: %v after %v",
					c, logs[c].times[i], logs[c].times[i-1])
			}
		}
	}
}

// TestFluidBatchedInnerLoopAllocFree pins AllocsPerRun == 0 on the batched
// multi-step path: one RunUntil stride spans several full batches
// (batchSteps Euler steps each), so the measurement covers integrateTo's
// batch assembly, fillRates' serial demand reads, runBatch's serial
// dispatch, and every fused stepChannel step in between. Workers=1
// isolates the inner loop from the pool's per-batch goroutine handoff,
// which is the one deliberate allocation of the parallel path (and is why
// both fan-outs branch serial before building their closures).
func TestFluidBatchedInnerLoopAllocFree(t *testing.T) {
	cfg := paperConfig(t, sim.P2P, 1)
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < b.Channels(); c++ {
		for j := 0; j < b.ChannelConfig().Chunks; j++ {
			if err := b.SetCloudCapacity(c, j, 1e6); err != nil {
				t.Fatal(err)
			}
		}
	}
	b.RunUntil(1200) // warm up feeds and scratch
	now := 1200.0
	const stride = 3 * batchSteps // several full batches per measured run
	allocs := testing.AllocsPerRun(20, func() {
		now += stride
		b.RunUntil(now)
	})
	if allocs > 0 {
		t.Fatalf("batched stepping allocates %.1f times per %d-step stride", allocs, stride)
	}
}

// TestFluidSerialFastPathSpawnsNoPool pins the satellite fix for the
// Fluid10MViewers/pool regression: when the effective worker count is 1 —
// explicit Workers=1, or any worker request on a single-core host — both
// fluid fan-outs (the demand-plane rate reads and the channel batch) run
// entirely on the calling goroutine, with no pool handoff to pay for zero
// available parallelism.
func TestFluidSerialFastPathSpawnsNoPool(t *testing.T) {
	cases := []struct {
		name    string
		procs   int // GOMAXPROCS during construction and run
		workers int
	}{
		{"workers=1", 8, 1},
		{"single-core-host", 1, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ensureParallelHost(t, tc.procs)
			b, err := New(paperConfig(t, sim.ClientServer, tc.workers))
			if err != nil {
				t.Fatal(err)
			}
			before := sim.PoolSpawns()
			b.RunUntil(2 * 3600)
			if got := sim.PoolSpawns() - before; got != 0 {
				t.Errorf("serial fast path spawned %d pool goroutines, want 0", got)
			}
			if b.TotalUsers() == 0 {
				t.Error("run produced no viewers")
			}
		})
	}
}
