package fluid

import (
	"fmt"

	"cloudmedia/internal/queueing"
)

// feed implements sim.Feed with fractional flow accumulators: where the
// event engine counts whole arrivals and transitions, the fluid engine
// accumulates expected flows directly, so the controller sees exact
// per-interval rates with no rounding noise.
type feed struct {
	chunks      int
	arrivals    float64
	transitions [][]float64 // transitions[i][j]: flow that finished chunk i then fetched j
	departures  []float64   // departures[i]: flow that finished chunk i then left
}

func newFeed(chunks int) *feed {
	f := &feed{
		chunks:      chunks,
		transitions: make([][]float64, chunks),
		departures:  make([]float64, chunks),
	}
	for i := range f.transitions {
		f.transitions[i] = make([]float64, chunks)
	}
	return f
}

// ArrivalRate returns the accumulated arrival flow divided by the
// interval length.
func (f *feed) ArrivalRate(intervalSeconds float64) (float64, error) {
	if intervalSeconds <= 0 {
		return 0, fmt.Errorf("fluid: non-positive interval %v", intervalSeconds)
	}
	return f.arrivals / intervalSeconds, nil
}

// Matrix returns the empirical transfer matrix from the accumulated
// flows; rows with (numerically) no observed mass fall back to the
// corresponding row of fallback, mirroring viewing.Estimator.Matrix.
func (f *feed) Matrix(fallback queueing.TransferMatrix) (queueing.TransferMatrix, error) {
	if fallback != nil {
		if fallback.Size() != f.chunks {
			return nil, fmt.Errorf("fluid: fallback size %d != chunks %d", fallback.Size(), f.chunks)
		}
		if err := fallback.Validate(); err != nil {
			return nil, fmt.Errorf("fluid: fallback: %w", err)
		}
	}
	p := queueing.NewTransferMatrix(f.chunks)
	for i := 0; i < f.chunks; i++ {
		total := f.departures[i]
		for _, v := range f.transitions[i] {
			total += v
		}
		if total <= 1e-12 {
			if fallback != nil {
				copy(p[i], fallback[i])
			}
			continue
		}
		for j, v := range f.transitions[i] {
			p[i][j] = v / total
		}
	}
	return p, nil
}

// Reset clears the accumulated flows, starting a new interval.
func (f *feed) Reset() {
	f.arrivals = 0
	for i := range f.transitions {
		for j := range f.transitions[i] {
			f.transitions[i][j] = 0
		}
		f.departures[i] = 0
	}
}
