package fluid

import (
	"fmt"

	"cloudmedia/internal/queueing"
)

// feed implements sim.Feed with fractional flow accumulators: where the
// event engine counts whole arrivals and transitions, the fluid engine
// accumulates expected flows directly, so the controller sees exact
// per-interval rates with no rounding noise.
//
// The transition accumulator is a flat row-major array: one allocation at
// construction, unit-stride accumulation and resets. Cell (i,j) lives at
// transitions[i*chunks+j], matching the engine's channel*J+j state layout.
type feed struct {
	chunks      int
	arrivals    float64
	transitions []float64 // transitions[i*chunks+j]: flow that finished chunk i then fetched j
	departures  []float64 // departures[i]: flow that finished chunk i then left
}

func newFeed(chunks int) *feed {
	return &feed{
		chunks:      chunks,
		transitions: make([]float64, chunks*chunks),
		departures:  make([]float64, chunks),
	}
}

// ArrivalRate returns the accumulated arrival flow divided by the
// interval length.
func (f *feed) ArrivalRate(intervalSeconds float64) (float64, error) {
	if intervalSeconds <= 0 {
		return 0, fmt.Errorf("fluid: non-positive interval %v", intervalSeconds)
	}
	return f.arrivals / intervalSeconds, nil
}

// Matrix returns the empirical transfer matrix from the accumulated
// flows; rows with (numerically) no observed mass fall back to the
// corresponding row of fallback, mirroring viewing.Estimator.Matrix.
func (f *feed) Matrix(fallback queueing.TransferMatrix) (queueing.TransferMatrix, error) {
	if fallback != nil {
		if fallback.Size() != f.chunks {
			return nil, fmt.Errorf("fluid: fallback size %d != chunks %d", fallback.Size(), f.chunks)
		}
		if err := fallback.Validate(); err != nil {
			return nil, fmt.Errorf("fluid: fallback: %w", err)
		}
	}
	p := queueing.NewTransferMatrix(f.chunks)
	for i := 0; i < f.chunks; i++ {
		row := f.transitions[i*f.chunks : (i+1)*f.chunks]
		total := f.departures[i]
		for _, v := range row {
			total += v
		}
		if total <= 1e-12 {
			if fallback != nil {
				copy(p[i], fallback[i])
			}
			continue
		}
		for j, v := range row {
			p[i][j] = v / total
		}
	}
	return p, nil
}

// Reset clears the accumulated flows, starting a new interval.
func (f *feed) Reset() {
	f.arrivals = 0
	for i := range f.transitions {
		f.transitions[i] = 0
	}
	for i := range f.departures {
		f.departures[i] = 0
	}
}
