package fault

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		s    *Schedule
		want string // substring of the error, "" = valid
	}{
		{"nil schedule", nil, ""},
		{"empty schedule", &Schedule{}, ""},
		{"good mix", &Schedule{
			Outages:      []RegionOutage{{Start: 10, Duration: 5}},
			Preemptions:  []SpotPreemption{{At: 0, Fraction: 1}},
			Degradations: []CapacityDegradation{{Start: 0, Duration: 1, Factor: 0.5}},
		}, ""},
		{"negative outage start", &Schedule{Outages: []RegionOutage{{Start: -1, Duration: 5}}}, "outage 0"},
		{"zero outage duration", &Schedule{Outages: []RegionOutage{{Start: 1, Duration: 0}}}, "outage 0"},
		{"negative preemption time", &Schedule{Preemptions: []SpotPreemption{{At: -1, Fraction: 0.5}}}, "preemption 0"},
		{"preemption fraction > 1", &Schedule{Preemptions: []SpotPreemption{{At: 1, Fraction: 1.5}}}, "preemption 0"},
		{"degradation factor < 0", &Schedule{Degradations: []CapacityDegradation{{Start: 0, Duration: 1, Factor: -0.1}}}, "degradation 0"},
		{"degradation zero window", &Schedule{Degradations: []CapacityDegradation{{Start: 0, Duration: 0, Factor: 0.5}}}, "degradation 0"},
		{"interruption fraction > 1", &Schedule{InterruptionFraction: 2}, "interruption fraction"},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestCloneIsDeepAndNilSafe(t *testing.T) {
	var nilSched *Schedule
	if nilSched.Clone() != nil {
		t.Error("nil.Clone() != nil")
	}
	orig := &Schedule{
		Outages:     []RegionOutage{{Region: "na", Start: 10, Duration: 5}},
		Preemptions: []SpotPreemption{{At: 7, Fraction: 0.5}},
		Name:        "x",
	}
	cp := orig.Clone()
	if !reflect.DeepEqual(orig, cp) {
		t.Fatalf("clone differs: %+v vs %+v", orig, cp)
	}
	cp.Outages[0].Start = 99
	cp.Preemptions[0].Fraction = 1
	if orig.Outages[0].Start != 10 || orig.Preemptions[0].Fraction != 0.5 {
		t.Error("mutating the clone reached the original")
	}
}

func TestEmptyAndInterruptionFraction(t *testing.T) {
	var nilSched *Schedule
	if !nilSched.Empty() || !(&Schedule{}).Empty() {
		t.Error("nil/zero schedules must be Empty")
	}
	if (&Schedule{Preemptions: []SpotPreemption{{At: 1}}}).Empty() {
		t.Error("schedule with events reported Empty")
	}
	if got := nilSched.interruptionFraction(); got != 0.5 {
		t.Errorf("nil interruptionFraction = %v, want default 0.5", got)
	}
	if got := (&Schedule{InterruptionFraction: 0.25}).interruptionFraction(); got != 0.25 {
		t.Errorf("interruptionFraction = %v, want 0.25", got)
	}
}

func TestTargetScoping(t *testing.T) {
	global := Target{}
	if !global.matches("") {
		t.Error("global event must match every target")
	}
	na := Target{Region: "na"}
	if !na.matches("") || !na.matches("na") || na.matches("eu") {
		t.Error("region scoping wrong")
	}
	if got := (Target{}).interval(); got != 3600 {
		t.Errorf("default interval %v, want 3600", got)
	}
	if got := (Target{IntervalSeconds: 600}).interval(); got != 600 {
		t.Errorf("interval %v, want 600", got)
	}
}

func TestPresets(t *testing.T) {
	names := PresetNames()
	if !reflect.DeepEqual(names, []string{"degrade-evening", "outage-flash", "preempt-peak"}) {
		t.Fatalf("preset names %v", names)
	}
	for _, name := range names {
		s := Presets()[name]
		if s.Name != name {
			t.Errorf("preset %s carries Name %q", name, s.Name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
		if s.Empty() {
			t.Errorf("preset %s declares no events", name)
		}
	}
}

func TestParseSpec(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want *Schedule
	}{
		{"", nil},
		{"none", nil},
		{"outage@19.5h+2h", &Schedule{
			Name:    "outage@19.5h+2h",
			Outages: []RegionOutage{{Start: 19.5 * 3600, Duration: 2 * 3600}},
		}},
		{"preempt@20h:0.6", &Schedule{
			Name:        "preempt@20h:0.6",
			Preemptions: []SpotPreemption{{At: 20 * 3600, Fraction: 0.6}},
		}},
		{"degrade@90m+30m:0.5", &Schedule{
			Name:         "degrade@90m+30m:0.5",
			Degradations: []CapacityDegradation{{Start: 5400, Duration: 1800, Factor: 0.5}},
		}},
		{"na=outage@6h+1h,preempt@300:1", &Schedule{
			Name:        "na=outage@6h+1h,preempt@300:1",
			Outages:     []RegionOutage{{Region: "na", Start: 6 * 3600, Duration: 3600}},
			Preemptions: []SpotPreemption{{At: 300, Fraction: 1}},
		}},
	} {
		got, err := ParseSpec(tc.spec)
		if err != nil {
			t.Errorf("%q: %v", tc.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%q: got %+v, want %+v", tc.spec, got, tc.want)
		}
	}
	// Preset names resolve through ParseSpec too.
	got, err := ParseSpec("preempt-peak")
	if err != nil || got == nil || len(got.Preemptions) != 1 {
		t.Errorf("preset via ParseSpec: %+v, %v", got, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"meteor@1h",          // unknown kind
		"outage",             // no @
		"outage@1h",          // missing duration
		"outage@1h+2h:0.5",   // outage takes no parameter
		"preempt@1h",         // missing fraction
		"preempt@1h:heavy",   // bad fraction
		"preempt@1h:1.5",     // fraction outside [0,1] (Validate)
		"degrade@1h+1h",      // missing factor
		"degrade@soon+1h:.5", // bad time
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("%q: want error", spec)
		}
	}
}

func TestParseTime(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
	}{
		{"19.5h", 19.5 * 3600}, {"90m", 5400}, {"30s", 30}, {"45", 45},
	} {
		got, err := parseTime(tc.in)
		if err != nil || math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("parseTime(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := parseTime("1d"); err == nil {
		t.Error("parseTime(1d): want error (days unsupported)")
	}
}
