// Package fault injects failures into running CloudMedia stacks: region
// outages, spot mass-preemptions, and capacity degradations, declared up
// front in a Schedule and realized through the sim.Backend scheduling
// seam so both engines — per-viewer event and aggregate fluid — see the
// same faults at the same simulated instants.
//
// Everything is deterministic per seed. Scheduled events fire at their
// declared times; the stochastic spot-interruption process draws from a
// rand stream seeded from the run seed and advances only at control-plane
// cadence, never from wall-clock or goroutine timing, so a fault run is
// bit-identical across worker counts and reproducible across runs — the
// property the resilience experiments and their invariance tests pin.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/core"
	"cloudmedia/internal/sim"
)

// RegionOutage takes one region dark for a window: its arrivals migrate
// to the surviving regions (geo failover) and its serving capacity drops
// to zero. In a single-region deployment, where there is nowhere to fail
// over to, the outage is applied as a capacity blackout: viewers keep
// arriving and stall — the no-failover baseline.
type RegionOutage struct {
	// Region names the geo region that fails; "" means the deployment's
	// largest-share region (geo) or the only region (single-region runs).
	Region string
	// Start and Duration bound the outage window, in simulated seconds.
	Start, Duration float64
}

// SpotPreemption is one provider-side mass-preemption event: at time At,
// the given fraction of every cluster's spot instances is killed.
type SpotPreemption struct {
	// Region restricts the event to one geo region; "" hits every region
	// (a global spot-market event) and is the only sensible value for
	// single-region runs.
	Region string
	// At is the event time in simulated seconds.
	At float64
	// Fraction of the spot instances preempted, in [0,1].
	Fraction float64
}

// CapacityDegradation scales a stack's serving capacity by Factor over a
// window — a brownout: the VMs stay rented and billed, but deliver only
// part of their bandwidth (degraded network, noisy neighbours, partial
// AZ failure).
type CapacityDegradation struct {
	// Region restricts the event to one geo region; "" hits every region.
	Region string
	// Start and Duration bound the degradation window, in seconds.
	Start, Duration float64
	// Factor is the surviving capacity multiplier in [0,1].
	Factor float64
}

// Schedule is a declarative fault plan for one run. The zero value (and
// nil) injects nothing; the spot-interruption process still runs whenever
// the pricing plan prices one (SpotFraction and SpotInterruption both
// positive), because interruption risk is a property of the market the
// plan opted into, not of the fault schedule.
type Schedule struct {
	Outages      []RegionOutage
	Preemptions  []SpotPreemption
	Degradations []CapacityDegradation
	// InterruptionFraction is the fraction of spot instances each
	// stochastic interruption event preempts; 0 means 0.5.
	InterruptionFraction float64
	// Name labels the schedule in CLI/CSV output ("" for ad-hoc ones).
	Name string
}

// Validate checks schedule invariants.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, o := range s.Outages {
		if o.Start < 0 || o.Duration <= 0 {
			return fmt.Errorf("fault: outage %d: window [%v, %v+%v) not positive", i, o.Start, o.Start, o.Duration)
		}
	}
	for i, p := range s.Preemptions {
		if p.At < 0 {
			return fmt.Errorf("fault: preemption %d: negative time %v", i, p.At)
		}
		if p.Fraction < 0 || p.Fraction > 1 {
			return fmt.Errorf("fault: preemption %d: fraction %v outside [0,1]", i, p.Fraction)
		}
	}
	for i, d := range s.Degradations {
		if d.Start < 0 || d.Duration <= 0 {
			return fmt.Errorf("fault: degradation %d: window [%v, %v+%v) not positive", i, d.Start, d.Start, d.Duration)
		}
		if d.Factor < 0 || d.Factor > 1 {
			return fmt.Errorf("fault: degradation %d: factor %v outside [0,1]", i, d.Factor)
		}
	}
	if s.InterruptionFraction < 0 || s.InterruptionFraction > 1 {
		return fmt.Errorf("fault: interruption fraction %v outside [0,1]", s.InterruptionFraction)
	}
	return nil
}

// Clone returns a deep copy (nil stays nil).
func (s *Schedule) Clone() *Schedule {
	if s == nil {
		return nil
	}
	out := *s
	out.Outages = append([]RegionOutage(nil), s.Outages...)
	out.Preemptions = append([]SpotPreemption(nil), s.Preemptions...)
	out.Degradations = append([]CapacityDegradation(nil), s.Degradations...)
	return &out
}

// Empty reports whether the schedule declares no events (the stochastic
// interruption process may still run, driven by the pricing plan).
func (s *Schedule) Empty() bool {
	return s == nil || (len(s.Outages) == 0 && len(s.Preemptions) == 0 && len(s.Degradations) == 0)
}

// interruptionFraction returns the per-event preemption fraction of the
// stochastic process, defaulting to 0.5.
func (s *Schedule) interruptionFraction() float64 {
	if s == nil || s.InterruptionFraction == 0 {
		return 0.5
	}
	return s.InterruptionFraction
}

// Target is the slice of one running stack the fault plan manipulates:
// the backend for scheduling, the cloud for spot inventory and billing,
// and the controller for the serving-plane capacity hooks.
type Target struct {
	Backend    sim.Backend
	Cloud      *cloud.Cloud
	Controller *core.Controller
	// Region is the stack's geo region name; "" for single-region runs.
	// Events carrying a region apply only when it matches.
	Region string
	// IntervalSeconds is the control period (the interruption process
	// cadence); 0 means 3600.
	IntervalSeconds float64
	// Seed drives the stochastic interruption process. Derive it from
	// the run seed (geo offsets it per region) so reruns reproduce.
	Seed int64
}

// matches reports whether an event scoped to region `r` applies to the
// target ("" is global).
func (t Target) matches(r string) bool { return r == "" || r == t.Region }

func (t Target) interval() float64 {
	if t.IntervalSeconds <= 0 {
		return 3600
	}
	return t.IntervalSeconds
}

// preempt realizes one spot preemption on the target: kill the billed
// spot VMs, then scale the serving plane by the survivor fraction. The
// next provisioning round re-rents replacements through the normal
// boot-latency path.
func (t Target) preempt(now, fraction float64) {
	killed, lost, err := t.Cloud.PreemptSpot(now, fraction)
	if err != nil || killed == 0 {
		return
	}
	//cloudmedia:allow noloss -- 1-lost is in [0,1] by PreemptSpot's contract
	_ = t.Controller.ScaleCapacity(now, 1-lost)
}

// Attach schedules the plan's preemptions and degradations plus the
// pricing plan's stochastic interruption process on the target. Region
// outages are not attached here: geo deployments realize them with share
// migration (see internal/geo), single-region runs via AttachBlackouts.
// sched may be nil (interruption process only).
func Attach(t Target, sched *Schedule) error {
	if err := sched.Validate(); err != nil {
		return err
	}
	if sched != nil {
		for _, p := range sched.Preemptions {
			if !t.matches(p.Region) {
				continue
			}
			f := p.Fraction
			if err := t.Backend.ScheduleAt(p.At, func(now float64) { t.preempt(now, f) }); err != nil {
				return fmt.Errorf("fault: preemption at %v: %w", p.At, err)
			}
		}
		for _, d := range sched.Degradations {
			if !t.matches(d.Region) {
				continue
			}
			factor := d.Factor
			if err := t.Backend.ScheduleAt(d.Start, func(now float64) {
				//cloudmedia:allow noloss -- factor validated into [0,1] above
				_ = t.Controller.SetCapacityFactor(now, factor)
			}); err != nil {
				return fmt.Errorf("fault: degradation at %v: %w", d.Start, err)
			}
			if err := t.Backend.ScheduleAt(d.Start+d.Duration, func(now float64) {
				//cloudmedia:allow noloss -- restoring factor 1 is always valid
				_ = t.Controller.SetCapacityFactor(now, 1)
			}); err != nil {
				return fmt.Errorf("fault: degradation end at %v: %w", d.Start+d.Duration, err)
			}
		}
	}
	return attachInterruptions(t, sched)
}

// attachInterruptions runs the spot market's stochastic interruption
// process when the target's pricing plan prices one: every control
// interval, offset half an interval from the provisioning barrier so the
// two never collide on one timestamp, a seeded Bernoulli draw decides
// whether the provider mass-preempts. The rand stream advances once per
// check regardless of outcome or worker count.
func attachInterruptions(t Target, sched *Schedule) error {
	plan := t.Cloud.Ledger().Plan()
	if plan.SpotFraction <= 0 || plan.SpotInterruption <= 0 {
		return nil
	}
	interval := t.interval()
	pInt := plan.SpotInterruption * interval / 3600
	if pInt > 1 {
		pInt = 1
	}
	fraction := sched.interruptionFraction()
	rng := rand.New(rand.NewSource(t.Seed ^ 0x5f0770c4))
	return t.Backend.ScheduleRepeating(interval/2, interval, func(now float64) {
		if rng.Float64() < pInt {
			t.preempt(now, fraction)
		}
	})
}

// AttachBlackouts applies the plan's region outages to a single-region
// stack as capacity blackouts: serving capacity drops to zero for the
// window (arrivals continue and stall — no failover exists), then
// restores. Geo deployments must not use this; they realize outages with
// share migration instead.
func AttachBlackouts(t Target, sched *Schedule) error {
	if err := sched.Validate(); err != nil {
		return err
	}
	if sched == nil {
		return nil
	}
	for _, o := range sched.Outages {
		if !t.matches(o.Region) {
			continue
		}
		if err := t.Backend.ScheduleAt(o.Start, func(now float64) {
			//cloudmedia:allow noloss -- factor 0 is always valid
			_ = t.Controller.SetCapacityFactor(now, 0)
		}); err != nil {
			return fmt.Errorf("fault: outage at %v: %w", o.Start, err)
		}
		if err := t.Backend.ScheduleAt(o.Start+o.Duration, func(now float64) {
			//cloudmedia:allow noloss -- restoring factor 1 is always valid
			_ = t.Controller.SetCapacityFactor(now, 1)
		}); err != nil {
			return fmt.Errorf("fault: outage end at %v: %w", o.Start+o.Duration, err)
		}
	}
	return nil
}

// Presets returns the named fault scenarios the CLI and sweep axes
// accept. Times are aligned to the default diurnal workload (flash crowds
// peaking at hours 12 and 20): the outage and the mass preemption both
// land inside the evening flash crowd, the worst case for failover.
func Presets() map[string]*Schedule {
	return map[string]*Schedule{
		"outage-flash": {
			Name:    "outage-flash",
			Outages: []RegionOutage{{Start: 19.5 * 3600, Duration: 2 * 3600}},
		},
		"preempt-peak": {
			Name:        "preempt-peak",
			Preemptions: []SpotPreemption{{At: 20 * 3600, Fraction: 0.6}},
		},
		"degrade-evening": {
			Name:         "degrade-evening",
			Degradations: []CapacityDegradation{{Start: 18 * 3600, Duration: 3 * 3600, Factor: 0.5}},
		},
	}
}

// PresetNames lists the Presets spellings, sorted, for CLI help.
func PresetNames() []string {
	m := Presets()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ParseSpec converts a command-line fault spec into a Schedule: either a
// preset name (see PresetNames) or comma-separated events —
//
//	outage@19.5h+2h            region outage (start + duration)
//	preempt@20h:0.6            spot mass-preemption (time, fraction)
//	degrade@18h+3h:0.5         capacity degradation (window, factor)
//
// Times accept h/m/s suffixes (plain numbers are seconds). An event may
// be scoped to a geo region with a name= prefix, e.g. "na=outage@6h+1h".
func ParseSpec(spec string) (*Schedule, error) {
	if spec == "" || spec == "none" {
		return nil, nil
	}
	if p, ok := Presets()[spec]; ok {
		return p, nil
	}
	s := &Schedule{Name: spec}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		region := ""
		if eq := strings.Index(part, "="); eq >= 0 {
			region, part = part[:eq], part[eq+1:]
		}
		kind, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("fault: bad event %q (want kind@time…)", part)
		}
		switch kind {
		case "outage", "degrade":
			window, param, _ := strings.Cut(rest, ":")
			startStr, durStr, ok := strings.Cut(window, "+")
			if !ok {
				return nil, fmt.Errorf("fault: %s event %q needs start+duration", kind, part)
			}
			start, err := parseTime(startStr)
			if err != nil {
				return nil, fmt.Errorf("fault: event %q: %w", part, err)
			}
			dur, err := parseTime(durStr)
			if err != nil {
				return nil, fmt.Errorf("fault: event %q: %w", part, err)
			}
			if kind == "outage" {
				if param != "" {
					return nil, fmt.Errorf("fault: outage event %q takes no parameter", part)
				}
				s.Outages = append(s.Outages, RegionOutage{Region: region, Start: start, Duration: dur})
			} else {
				factor, err := parseFrac(param)
				if err != nil {
					return nil, fmt.Errorf("fault: event %q: %w", part, err)
				}
				s.Degradations = append(s.Degradations, CapacityDegradation{Region: region, Start: start, Duration: dur, Factor: factor})
			}
		case "preempt":
			atStr, param, _ := strings.Cut(rest, ":")
			at, err := parseTime(atStr)
			if err != nil {
				return nil, fmt.Errorf("fault: event %q: %w", part, err)
			}
			frac, err := parseFrac(param)
			if err != nil {
				return nil, fmt.Errorf("fault: event %q: %w", part, err)
			}
			s.Preemptions = append(s.Preemptions, SpotPreemption{Region: region, At: at, Fraction: frac})
		default:
			return nil, fmt.Errorf("fault: unknown event kind %q (want outage, preempt, or degrade)", kind)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseTime parses "19.5h", "90m", "30s", or plain seconds.
func parseTime(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "h"):
		mult, s = 3600, strings.TrimSuffix(s, "h")
	case strings.HasSuffix(s, "m"):
		mult, s = 60, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "s"):
		s = strings.TrimSuffix(s, "s")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad time %q", s)
	}
	return v * mult, nil
}

// parseFrac parses a fraction/factor parameter in [0,1].
func parseFrac(s string) (float64, error) {
	if s == "" {
		return 0, fmt.Errorf("missing fraction")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad fraction %q", s)
	}
	return v, nil
}
