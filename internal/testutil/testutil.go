// Package testutil holds the shared scenario-building helpers behind the
// engine-layer test suites. Before it existed, every package's tests
// (core, fluid, geo, p2p, …) hand-rolled the same trio — a small
// queueing.Config, a flattened workload, a viewing transfer matrix — with
// slightly drifting constants; this package is the single source of that
// boilerplate. Helpers return plain values the caller may tweak, so a
// test that needs a non-default VM bandwidth overrides one field instead
// of forking the whole builder.
//
// The package sits below the experiment harness: it may import the
// engine layers (sim, cloud, queueing, viewing, workload) but never
// internal/experiments or internal/geo, so their own test files can use
// it without an import cycle. (internal/sim's tests cannot: they live in
// package sim, which testutil imports.)
package testutil

import (
	"testing"

	"cloudmedia/internal/cloud"
	"cloudmedia/internal/queueing"
	"cloudmedia/internal/sim"
	"cloudmedia/internal/viewing"
	"cloudmedia/internal/workload"
)

// ChannelConfig returns the standard small test channel shape: the
// paper's 50 KB/s playback rate and 0.7 first-chunk entry over the given
// chunk count and duration, served by default-bandwidth VMs. Tests tweak
// the returned value for anything else (SlotsPerVM, VMBandwidth, …).
func ChannelConfig(chunks int, chunkSeconds float64) queueing.Config {
	return queueing.Config{
		Chunks:          chunks,
		PlaybackRate:    50e3,
		ChunkSeconds:    chunkSeconds,
		VMBandwidth:     cloud.DefaultVMBandwidth,
		EntryFirstChunk: 0.7,
	}
}

// FlatWorkload returns a steady workload for deterministic assertions:
// the default parameters flattened to a constant multiplier (base level
// 1, no flash crowds) at the given channel count, aggregate arrival
// rate, and mean VCR-jump interval.
func FlatWorkload(channels int, ratePerSecond, jumpMeanSeconds float64) workload.Params {
	wl := workload.Default()
	wl.Channels = channels
	wl.BaseArrivalRate = ratePerSecond
	wl.BaseLevel = 1
	wl.FlashCrowds = nil
	wl.JumpMeanSeconds = jumpMeanSeconds
	return wl
}

// Sequential returns the pure sequential-viewing transfer matrix,
// failing the test on a bad shape.
func Sequential(tb testing.TB, chunks int, cont float64) queueing.TransferMatrix {
	tb.Helper()
	p, err := viewing.Sequential(chunks, cont)
	if err != nil {
		tb.Fatalf("testutil: Sequential(%d, %v): %v", chunks, cont, err)
	}
	return p
}

// SequentialWithJumps returns the sequential-plus-VCR-jumps transfer
// matrix, failing the test on a bad shape.
func SequentialWithJumps(tb testing.TB, chunks int, cont, jump float64) queueing.TransferMatrix {
	tb.Helper()
	p, err := viewing.SequentialWithJumps(chunks, cont, jump)
	if err != nil {
		tb.Fatalf("testutil: SequentialWithJumps(%d, %v, %v): %v", chunks, cont, jump, err)
	}
	return p
}

// Stack assembles the engine-layer system under test — simulator on the
// given config, a default-catalog cloud, and its broker — failing the
// test on any construction error. Controllers are the one piece left to
// the caller: every test picks its own core.Options.
func Stack(tb testing.TB, cfg sim.Config) (*sim.Simulator, *cloud.Cloud, *cloud.Broker) {
	tb.Helper()
	s, err := sim.New(cfg)
	if err != nil {
		tb.Fatalf("testutil: sim.New: %v", err)
	}
	cl, err := cloud.New(cloud.DefaultVMClusters(), cloud.DefaultNFSClusters())
	if err != nil {
		tb.Fatalf("testutil: cloud.New: %v", err)
	}
	broker, err := cloud.NewBroker(cl)
	if err != nil {
		tb.Fatalf("testutil: cloud.NewBroker: %v", err)
	}
	return s, cl, broker
}
