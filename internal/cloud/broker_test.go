package cloud

import (
	"errors"
	"testing"
)

func newTestBroker(t *testing.T) (*Broker, *Cloud) {
	t.Helper()
	c := newTestCloud(t)
	b, err := NewBroker(c)
	if err != nil {
		t.Fatalf("NewBroker: %v", err)
	}
	return b, c
}

func TestNewBrokerNilCloud(t *testing.T) {
	if _, err := NewBroker(nil); err == nil {
		t.Error("nil cloud: want error")
	}
}

func TestNegotiateCatalog(t *testing.T) {
	b, c := newTestBroker(t)
	cat := b.Negotiate()
	if cat.VMBandwidth != DefaultVMBandwidth {
		t.Errorf("catalog bandwidth = %v", cat.VMBandwidth)
	}
	if len(cat.VMClusters) != 3 || len(cat.NFSClusters) != 2 {
		t.Fatalf("catalog sizes: %d VM, %d NFS", len(cat.VMClusters), len(cat.NFSClusters))
	}
	if cat.VMClusters[0].AvailableVMs != 75 {
		t.Errorf("fresh availability = %d, want 75", cat.VMClusters[0].AvailableVMs)
	}
	// Allocate and re-negotiate: availability must shrink.
	if err := c.SetVMs(0, "standard", 20); err != nil {
		t.Fatal(err)
	}
	cat = b.Negotiate()
	if cat.VMClusters[0].AvailableVMs != 55 {
		t.Errorf("availability after allocation = %d, want 55", cat.VMClusters[0].AvailableVMs)
	}
}

func TestSubmitAppliesRequest(t *testing.T) {
	b, c := newTestBroker(t)
	req := Request{
		Time:      100,
		VMTargets: map[string]int{"standard": 12, "advanced": 3},
		StorageGB: map[string]float64{"high": 5},
	}
	if err := b.Submit(req); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got, _ := c.AllocatedVMs("standard"); got != 12 {
		t.Errorf("standard allocated = %d, want 12", got)
	}
	if got, _ := c.AllocatedVMs("advanced"); got != 3 {
		t.Errorf("advanced allocated = %d, want 3", got)
	}
	if gb, _ := c.StoredGB("high"); gb != 5 {
		t.Errorf("high stored = %v, want 5", gb)
	}
	log := b.RequestLog()
	if len(log) != 1 || log[0].Time != 100 {
		t.Errorf("request log = %+v", log)
	}
}

func TestSubmitRejectsInvalidAtomically(t *testing.T) {
	b, c := newTestBroker(t)
	// First a valid baseline.
	if err := b.Submit(Request{Time: 0, VMTargets: map[string]int{"standard": 5}}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Now an invalid request: the valid part must NOT be applied.
	err := b.Submit(Request{
		Time:      10,
		VMTargets: map[string]int{"standard": 10, "medium": 99},
	})
	if !errors.Is(err, ErrCapacity) {
		t.Fatalf("err = %v, want ErrCapacity", err)
	}
	if got, _ := c.AllocatedVMs("standard"); got != 5 {
		t.Errorf("partial application: standard = %d, want 5", got)
	}
	if len(b.RequestLog()) != 1 {
		t.Errorf("rejected request logged: %d entries", len(b.RequestLog()))
	}
}

func TestSubmitUnknownClusters(t *testing.T) {
	b, _ := newTestBroker(t)
	if err := b.Submit(Request{VMTargets: map[string]int{"ghost": 1}}); !errors.Is(err, ErrUnknownCluster) {
		t.Errorf("err = %v, want ErrUnknownCluster", err)
	}
	if err := b.Submit(Request{StorageGB: map[string]float64{"ghost": 1}}); !errors.Is(err, ErrUnknownCluster) {
		t.Errorf("err = %v, want ErrUnknownCluster", err)
	}
}

func TestRequestLogIsCopy(t *testing.T) {
	b, _ := newTestBroker(t)
	if err := b.Submit(Request{Time: 1, VMTargets: map[string]int{"standard": 1}}); err != nil {
		t.Fatal(err)
	}
	log := b.RequestLog()
	log[0].Time = 999
	if b.RequestLog()[0].Time != 1 {
		t.Error("RequestLog exposes internal storage")
	}
}
