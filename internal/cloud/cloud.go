package cloud

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrCapacity is returned when a request exceeds a cluster's capacity.
var ErrCapacity = errors.New("cloud: insufficient cluster capacity")

// ErrUnknownCluster is returned when a request names a cluster that does
// not exist.
var ErrUnknownCluster = errors.New("cloud: unknown cluster")

// Option configures a Cloud.
type Option func(*Cloud)

// WithBootLatency overrides the VM launch latency in seconds.
func WithBootLatency(seconds float64) Option {
	return func(c *Cloud) { c.bootSeconds = seconds }
}

// WithShutdownLatency overrides the VM shutdown latency in seconds.
func WithShutdownLatency(seconds float64) Option {
	return func(c *Cloud) { c.shutdownSeconds = seconds }
}

// WithVMBandwidth overrides the per-VM bandwidth R in bytes/s.
func WithVMBandwidth(bytesPerSecond float64) Option {
	return func(c *Cloud) { c.vmBandwidth = bytesPerSecond }
}

// WithPricing selects the pricing plan the cloud's ledger bills under
// (default: OnDemandPricing, the paper's literal pay-as-you-go prices).
func WithPricing(plan PricingPlan) Option {
	return func(c *Cloud) { c.pricing = plan }
}

// vmClusterState tracks one virtual cluster at runtime.
type vmClusterState struct {
	spec      VMClusterSpec
	allocated int // VMs currently rented (billed), including those booting
	// boots holds the ready times of VMs still booting, kept sorted.
	boots []float64
}

// nfsClusterState tracks one NFS cluster at runtime.
type nfsClusterState struct {
	spec     NFSClusterSpec
	storedGB float64
}

// Cloud is the simulated IaaS infrastructure. All methods are safe for
// concurrent use; simulated time flows through the `now` parameters, which
// must be non-decreasing across calls (enforced for billing).
type Cloud struct {
	mu sync.Mutex

	vms     map[string]*vmClusterState
	vmOrder []string
	nfs     map[string]*nfsClusterState
	nfsOr   []string

	vmBandwidth     float64
	bootSeconds     float64
	shutdownSeconds float64

	pricing PricingPlan
	ledger  *Ledger

	lastBilled  float64
	vmCost      float64
	storageCost float64
}

// New builds a Cloud with the given cluster catalogs. Cluster names must be
// unique within their kind.
func New(vmSpecs []VMClusterSpec, nfsSpecs []NFSClusterSpec, opts ...Option) (*Cloud, error) {
	if len(vmSpecs) == 0 {
		return nil, fmt.Errorf("cloud: at least one VM cluster required")
	}
	c := &Cloud{
		vms:             make(map[string]*vmClusterState, len(vmSpecs)),
		nfs:             make(map[string]*nfsClusterState, len(nfsSpecs)),
		vmBandwidth:     DefaultVMBandwidth,
		bootSeconds:     DefaultBootSeconds,
		shutdownSeconds: DefaultShutdownSeconds,
	}
	for _, s := range vmSpecs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if _, dup := c.vms[s.Name]; dup {
			return nil, fmt.Errorf("cloud: duplicate VM cluster %q", s.Name)
		}
		c.vms[s.Name] = &vmClusterState{spec: s}
		c.vmOrder = append(c.vmOrder, s.Name)
	}
	for _, s := range nfsSpecs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if _, dup := c.nfs[s.Name]; dup {
			return nil, fmt.Errorf("cloud: duplicate NFS cluster %q", s.Name)
		}
		c.nfs[s.Name] = &nfsClusterState{spec: s}
		c.nfsOr = append(c.nfsOr, s.Name)
	}
	for _, o := range opts {
		o(c)
	}
	if c.vmBandwidth <= 0 {
		return nil, fmt.Errorf("cloud: non-positive VM bandwidth %v", c.vmBandwidth)
	}
	if c.bootSeconds < 0 || c.shutdownSeconds < 0 {
		return nil, fmt.Errorf("cloud: negative lifecycle latency")
	}
	if err := c.pricing.Validate(); err != nil {
		return nil, err
	}
	c.ledger = newLedger(c.pricing, vmSpecs)
	return c, nil
}

// Ledger returns the billing ledger accruing this cloud's bill under its
// pricing plan.
func (c *Cloud) Ledger() *Ledger { return c.ledger }

// VMBandwidth returns R, the bandwidth of every VM in bytes/s.
func (c *Cloud) VMBandwidth() float64 { return c.vmBandwidth }

// BootLatency returns the VM launch latency in seconds.
func (c *Cloud) BootLatency() float64 { return c.bootSeconds }

// VMClusters returns the VM cluster catalog in registration order.
func (c *Cloud) VMClusters() []VMClusterSpec {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]VMClusterSpec, 0, len(c.vmOrder))
	for _, name := range c.vmOrder {
		out = append(out, c.vms[name].spec)
	}
	return out
}

// NFSClusters returns the NFS cluster catalog in registration order.
func (c *Cloud) NFSClusters() []NFSClusterSpec {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NFSClusterSpec, 0, len(c.nfsOr))
	for _, name := range c.nfsOr {
		out = append(out, c.nfs[name].spec)
	}
	return out
}

// SetVMs scales cluster `name` to `target` allocated VMs at simulated time
// now. Scale-ups start booting (VMs become active after BootLatency and are
// billed from the request, like EC2); scale-downs release VMs immediately,
// stopping their billing. It is the VM-scheduler entry point of Fig. 1.
func (c *Cloud) SetVMs(now float64, name string, target int) error {
	if target < 0 {
		return fmt.Errorf("cloud: negative VM target %d", target)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.vms[name]
	if !ok {
		return fmt.Errorf("%w: VM cluster %q", ErrUnknownCluster, name)
	}
	if target > st.spec.MaxVMs {
		return fmt.Errorf("%w: cluster %q: want %d VMs, capacity %d", ErrCapacity, name, target, st.spec.MaxVMs)
	}
	c.accrueLocked(now)
	switch {
	case target > st.allocated:
		ready := now + c.bootSeconds
		for i := st.allocated; i < target; i++ {
			st.boots = append(st.boots, ready)
		}
	case target < st.allocated:
		// Release booting VMs first (they contribute no capacity yet), then
		// running ones. boots is sorted ascending; drop the latest first.
		drop := st.allocated - target
		for drop > 0 && len(st.boots) > 0 {
			st.boots = st.boots[:len(st.boots)-1]
			drop--
		}
	}
	st.allocated = target
	return nil
}

// AllocatedVMs returns the number of VMs currently rented (billed) in the
// cluster, including ones still booting.
func (c *Cloud) AllocatedVMs(name string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.vms[name]
	if !ok {
		return 0, fmt.Errorf("%w: VM cluster %q", ErrUnknownCluster, name)
	}
	return st.allocated, nil
}

// ActiveVMs returns the number of VMs in the cluster that have finished
// booting by time now and can serve traffic.
func (c *Cloud) ActiveVMs(now float64, name string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.vms[name]
	if !ok {
		return 0, fmt.Errorf("%w: VM cluster %q", ErrUnknownCluster, name)
	}
	return st.activeAt(now), nil
}

// TotalActiveVMs returns the number of serving VMs across all clusters.
func (c *Cloud) TotalActiveVMs(now float64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int
	for _, name := range c.vmOrder {
		total += c.vms[name].activeAt(now)
	}
	return total
}

// ActiveBandwidth returns the aggregate serving bandwidth R × activeVMs in
// bytes/s at time now.
func (c *Cloud) ActiveBandwidth(now float64) float64 {
	return float64(c.TotalActiveVMs(now)) * c.vmBandwidth
}

func (s *vmClusterState) activeAt(now float64) int {
	sort.Float64s(s.boots)
	booting := 0
	for i := len(s.boots) - 1; i >= 0 && s.boots[i] > now; i-- {
		booting++
	}
	// Retire completed boot records so the slice stays small.
	done := len(s.boots) - booting
	if done > 0 {
		s.boots = append(s.boots[:0], s.boots[done:]...)
	}
	return s.allocated - booting
}

// FailVMs abruptly kills up to `count` VMs in the cluster at time now —
// failure injection for resilience tests. Failed VMs stop billing and stop
// serving immediately; the consumer's next SLA request (absolute targets)
// naturally replaces them. It returns the number actually failed.
func (c *Cloud) FailVMs(now float64, name string, count int) (int, error) {
	if count < 0 {
		return 0, fmt.Errorf("cloud: negative failure count %d", count)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.vms[name]
	if !ok {
		return 0, fmt.Errorf("%w: VM cluster %q", ErrUnknownCluster, name)
	}
	c.accrueLocked(now)
	failed := count
	if failed > st.allocated {
		failed = st.allocated
	}
	// Kill booting instances first (cheapest interpretation), then running.
	drop := failed
	for drop > 0 && len(st.boots) > 0 {
		st.boots = st.boots[:len(st.boots)-1]
		drop--
	}
	st.allocated -= failed
	return failed, nil
}

// PreemptSpot mass-preempts the given fraction of every cluster's spot
// instances at time now — the provider-side interruption event of the
// spot market. Spot counts are resolved per cluster exactly as the ledger
// bills them (SpotFraction of the elastic allocation above the reserved
// count); preempted VMs stop billing and serving immediately, like
// FailVMs. It records the interruption event in the ledger and returns
// the VMs killed plus the fraction of the total allocation lost, so the
// caller can scale the serving plane's capacities by the survivor share.
// A plan without a spot tier is a no-op.
func (c *Cloud) PreemptSpot(now, fraction float64) (killed int, lostFraction float64, err error) {
	if fraction < 0 || fraction > 1 {
		return 0, 0, fmt.Errorf("cloud: preemption fraction %v outside [0,1]", fraction)
	}
	c.mu.Lock()
	if c.pricing.SpotFraction <= 0 {
		c.mu.Unlock()
		return 0, 0, nil
	}
	c.accrueLocked(now)
	var before int
	for _, name := range c.vmOrder {
		st := c.vms[name]
		before += st.allocated
		reserved := 0
		if c.ledger != nil {
			reserved = c.ledger.ReservedVMs(name)
		}
		spot := c.pricing.spotVMs(st.allocated - reserved)
		kill := int(float64(spot)*fraction + 0.5 + 1e-9)
		if kill > spot {
			kill = spot
		}
		if kill == 0 {
			continue
		}
		// Kill booting instances first (they contribute no capacity yet),
		// then running ones — the FailVMs convention.
		drop := kill
		for drop > 0 && len(st.boots) > 0 {
			st.boots = st.boots[:len(st.boots)-1]
			drop--
		}
		st.allocated -= kill
		killed += kill
	}
	c.mu.Unlock()
	if before > 0 {
		lostFraction = float64(killed) / float64(before)
	}
	if c.ledger != nil {
		c.ledger.RecordInterruption(now, killed)
	}
	return killed, lostFraction, nil
}

// SetStorage sets the absolute number of GB stored on NFS cluster `name` at
// time now. It is the NFS-scheduler entry point of Fig. 1.
func (c *Cloud) SetStorage(now float64, name string, gb float64) error {
	if gb < 0 {
		return fmt.Errorf("cloud: negative storage %v GB", gb)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.nfs[name]
	if !ok {
		return fmt.Errorf("%w: NFS cluster %q", ErrUnknownCluster, name)
	}
	if gb > st.spec.CapacityGB {
		return fmt.Errorf("%w: NFS cluster %q: want %v GB, capacity %v", ErrCapacity, name, gb, st.spec.CapacityGB)
	}
	c.accrueLocked(now)
	st.storedGB = gb
	return nil
}

// StoredGB returns the GB currently stored on the cluster.
func (c *Cloud) StoredGB(name string) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.nfs[name]
	if !ok {
		return 0, fmt.Errorf("%w: NFS cluster %q", ErrUnknownCluster, name)
	}
	return st.storedGB, nil
}

// Advance accrues billing up to simulated time now. Callers typically
// invoke it once per provisioning interval and once at the end of a run.
func (c *Cloud) Advance(now float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.accrueLocked(now)
}

// accrueLocked integrates rental costs from lastBilled to now.
// Caller holds c.mu.
func (c *Cloud) accrueLocked(now float64) {
	if now <= c.lastBilled {
		return
	}
	hours := (now - c.lastBilled) / 3600
	// Accrue in registration order: float addition is not associative, so
	// ranging the maps here would make the accrued cost depend on Go's
	// randomized iteration order and break bit-identical replay.
	for _, name := range c.vmOrder {
		st := c.vms[name]
		c.vmCost += float64(st.allocated) * st.spec.PricePerHour * hours
	}
	for _, name := range c.nfsOr {
		st := c.nfs[name]
		c.storageCost += st.storedGB * st.spec.PricePerGBHour * hours
	}
	if c.ledger != nil {
		vms := make([]vmUsage, 0, len(c.vmOrder))
		for _, name := range c.vmOrder {
			st := c.vms[name]
			vms = append(vms, vmUsage{name: name, price: st.spec.PricePerHour, allocated: st.allocated})
		}
		nfs := make([]storageUsage, 0, len(c.nfsOr))
		for _, name := range c.nfsOr {
			st := c.nfs[name]
			nfs = append(nfs, storageUsage{price: st.spec.PricePerGBHour, gb: st.storedGB})
		}
		c.ledger.accrue(c.lastBilled, now, vms, nfs)
	}
	c.lastBilled = now
}

// Costs returns the accrued VM rental and storage costs in dollars, as of
// the last Advance/SetVMs/SetStorage call.
func (c *Cloud) Costs() (vmCost, storageCost float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vmCost, c.storageCost
}

// ResetCosts zeroes the accrued costs, including the ledger's (used when
// an experiment discards a warm-up period).
func (c *Cloud) ResetCosts() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vmCost, c.storageCost = 0, 0
	if c.ledger != nil {
		c.ledger.reset()
	}
}
