package cloud

import (
	"strings"
	"testing"
)

// When a request names several invalid clusters, Submit must report the
// same one every time (the lexicographically first), not whichever map
// iteration happens to visit first.
func TestSubmitErrorSelectionIsDeterministic(t *testing.T) {
	b, _ := newTestBroker(t)
	req := Request{VMTargets: map[string]int{
		"zzz-ghost": 1,
		"aaa-ghost": 1,
		"mmm-ghost": 1,
	}}
	for i := 0; i < 50; i++ {
		err := b.Submit(req)
		if err == nil {
			t.Fatal("Submit of unknown clusters succeeded")
		}
		if !strings.Contains(err.Error(), "aaa-ghost") {
			t.Fatalf("run %d: err = %v, want the sorted-first cluster aaa-ghost", i, err)
		}
	}
}
