package cloud

import (
	"math"
	"strings"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPricingValidate(t *testing.T) {
	good := []PricingPlan{{}, OnDemandPricing(), ReservedPricing()}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("%q: %v", p.DisplayName(), err)
		}
	}
	bad := []PricingPlan{
		{OnDemandRate: -1},
		{ReservedFraction: 2, TermHours: 24},
		{ReservedFraction: 0.5}, // reserved tier without a term
		{ReservedFraction: 0.5, TermHours: 24, ReservedRate: -0.1},
		{UpfrontFraction: -1},
		{StorageRate: -1},
		{TermHours: -3},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted: %+v", i, p)
		}
	}
}

func TestParsePricing(t *testing.T) {
	for _, name := range PricingNames() {
		p, err := ParsePricing(name)
		if err != nil {
			t.Errorf("ParsePricing(%q): %v", name, err)
			continue
		}
		if p.DisplayName() != name {
			t.Errorf("ParsePricing(%q).DisplayName() = %q", name, p.DisplayName())
		}
	}
	if _, err := ParsePricing("preemptible"); err == nil {
		t.Error("unknown plan accepted")
	}
}

// TestLedgerOnDemandMatchesLegacyCosts: under the default plan, the
// ledger's bill is exactly the Cloud's legacy cost counters.
func TestLedgerOnDemandMatchesLegacyCosts(t *testing.T) {
	cl, err := New(DefaultVMClusters(), DefaultNFSClusters())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SetVMs(0, "standard", 10); err != nil {
		t.Fatal(err)
	}
	if err := cl.SetStorage(0, "high", 5); err != nil {
		t.Fatal(err)
	}
	cl.Advance(2 * 3600)
	if err := cl.SetVMs(2*3600, "standard", 4); err != nil {
		t.Fatal(err)
	}
	cl.Advance(5 * 3600)

	vmCost, storageCost := cl.Costs()
	bill := cl.Ledger().Totals()
	if bill.ReservedUSD != 0 || bill.UpfrontUSD != 0 {
		t.Errorf("on-demand plan accrued reserved dollars: %+v", bill)
	}
	if !approx(bill.OnDemandUSD, vmCost, 1e-9) {
		t.Errorf("ledger VM bill %v != legacy %v", bill.OnDemandUSD, vmCost)
	}
	if !approx(bill.StorageUSD, storageCost, 1e-9) {
		t.Errorf("ledger storage bill %v != legacy %v", bill.StorageUSD, storageCost)
	}
	if want := 10*2 + 4*3; !approx(bill.OnDemandVMHours, float64(want), 1e-9) {
		t.Errorf("VM-hours %v, want %d", bill.OnDemandVMHours, want)
	}
	if want := 5 * 5; !approx(bill.GBHours, float64(want), 1e-9) {
		t.Errorf("GB-hours %v, want %d", bill.GBHours, want)
	}
}

// TestLedgerReservedSplit: with a reserved tier, committed capacity bills
// at the discounted rate whether used or not, overflow bills on demand,
// and the upfront fee recharges at each term boundary.
func TestLedgerReservedSplit(t *testing.T) {
	plan := PricingPlan{
		Name:             "test-reserved",
		ReservedFraction: 0.2, // standard 75→15, medium 30→6, advanced 45→9
		ReservedRate:     0.5,
		TermHours:        24,
		UpfrontFraction:  0.1,
	}
	cl, err := New(DefaultVMClusters(), DefaultNFSClusters(), WithPricing(plan))
	if err != nil {
		t.Fatal(err)
	}
	led := cl.Ledger()
	if got := led.ReservedVMs("standard"); got != 15 {
		t.Errorf("reserved standard = %d, want 15", got)
	}

	// Upfront for term 1 is charged at construction:
	// Σ reserved × price × 24 h × 0.1.
	upfront := (15*0.450 + 6*0.700 + 9*0.800) * 24 * 0.1
	if b := led.Totals(); !approx(b.UpfrontUSD, upfront, 1e-9) {
		t.Fatalf("first-term upfront %v, want %v", b.UpfrontUSD, upfront)
	}

	// 20 standard VMs for 10 hours: 15 reserved at half price, 5 on demand.
	if err := cl.SetVMs(0, "standard", 20); err != nil {
		t.Fatal(err)
	}
	cl.Advance(10 * 3600)
	b := led.Totals()
	// All three clusters' reserved capacity bills, allocated or not.
	wantReserved := (15*0.450 + 6*0.700 + 9*0.800) * 0.5 * 10
	if !approx(b.ReservedUSD, wantReserved, 1e-9) {
		t.Errorf("reserved USD %v, want %v", b.ReservedUSD, wantReserved)
	}
	if want := 5 * 0.450 * 10.0; !approx(b.OnDemandUSD, want, 1e-9) {
		t.Errorf("on-demand USD %v, want %v", b.OnDemandUSD, want)
	}
	if want := (15 + 6 + 9) * 10.0; !approx(b.ReservedVMHours, want, 1e-9) {
		t.Errorf("reserved VM-hours %v, want %v", b.ReservedVMHours, want)
	}

	// Crossing into day 2 recharges the upfront exactly once more.
	cl.Advance(30 * 3600)
	if b := led.Totals(); !approx(b.UpfrontUSD, 2*upfront, 1e-9) {
		t.Errorf("after term rollover, upfront %v, want %v", b.UpfrontUSD, 2*upfront)
	}
}

// TestLedgerCheckpoint: the interval accumulator drains on Checkpoint and
// the pieces sum to the running totals.
func TestLedgerCheckpoint(t *testing.T) {
	cl, err := New(DefaultVMClusters(), DefaultNFSClusters())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SetVMs(0, "standard", 8); err != nil {
		t.Fatal(err)
	}
	cl.Advance(3600)
	first := cl.Ledger().Checkpoint()
	if !approx(first.OnDemandUSD, 8*0.450, 1e-9) {
		t.Errorf("interval 1 bill %v, want %v", first.OnDemandUSD, 8*0.450)
	}
	cl.Advance(2 * 3600)
	second := cl.Ledger().Checkpoint()
	if !approx(second.OnDemandUSD, 8*0.450, 1e-9) {
		t.Errorf("interval 2 bill %v, want %v", second.OnDemandUSD, 8*0.450)
	}
	total := cl.Ledger().Totals()
	if !approx(first.OnDemandUSD+second.OnDemandUSD, total.OnDemandUSD, 1e-9) {
		t.Errorf("checkpoints %v + %v != total %v", first.OnDemandUSD, second.OnDemandUSD, total.OnDemandUSD)
	}
	if drained := cl.Ledger().Checkpoint(); drained.TotalUSD() != 0 {
		t.Errorf("third checkpoint not empty: %+v", drained)
	}
}

func TestLedgerResetAndDiagnostics(t *testing.T) {
	cl, err := New(DefaultVMClusters(), DefaultNFSClusters(), WithPricing(ReservedPricing()))
	if err != nil {
		t.Fatal(err)
	}
	led := cl.Ledger()
	led.Notef(42, "storage plan failed: %v", "budget")
	if notes := led.Diagnostics(); len(notes) != 1 || notes[0].Time != 42 {
		t.Fatalf("diagnostics = %+v", notes)
	}
	if err := cl.SetVMs(0, "standard", 5); err != nil {
		t.Fatal(err)
	}
	cl.Advance(3600)
	if led.Totals().TotalUSD() == 0 {
		t.Fatal("nothing accrued")
	}
	cl.ResetCosts()
	if got := led.Totals(); got.TotalUSD() != 0 {
		t.Errorf("reset left %v dollars", got.TotalUSD())
	}
	if notes := led.Diagnostics(); len(notes) != 0 {
		t.Errorf("reset left %d notes", len(notes))
	}
}

// TestLedgerReservedBeatsOnDemandWhenBusy: a fully loaded cluster is
// cheaper under the reservation plan, an idle one is cheaper on demand —
// the trade-off the plan models.
func TestLedgerReservedBeatsOnDemandWhenBusy(t *testing.T) {
	bill := func(plan PricingPlan, full bool) float64 {
		cl, err := New(DefaultVMClusters(), nil, WithPricing(plan))
		if err != nil {
			t.Fatal(err)
		}
		if full {
			for _, s := range DefaultVMClusters() {
				if err := cl.SetVMs(0, s.Name, s.MaxVMs); err != nil {
					t.Fatal(err)
				}
			}
		}
		cl.Advance(24 * 3600)
		return cl.Ledger().Totals().TotalUSD()
	}
	// Busy: every cluster at capacity for a day, so the whole reserved
	// tier is utilized.
	if od, rs := bill(OnDemandPricing(), true), bill(ReservedPricing(), true); rs >= od {
		t.Errorf("busy day: reserved %v not cheaper than on-demand %v", rs, od)
	}
	// Idle: zero allocation; reservations still bill.
	if od, rs := bill(OnDemandPricing(), false), bill(ReservedPricing(), false); rs <= od {
		t.Errorf("idle day: reserved %v not dearer than on-demand %v", rs, od)
	}
}

// BenchmarkLedgerAccrual measures the per-accrual cost of the billing
// path (three VM clusters, two NFS clusters), which runs on every
// SetVMs/SetStorage/Advance.
func BenchmarkLedgerAccrual(b *testing.B) {
	cl, err := New(DefaultVMClusters(), DefaultNFSClusters(), WithPricing(ReservedPricing()))
	if err != nil {
		b.Fatal(err)
	}
	if err := cl.SetVMs(0, "standard", 40); err != nil {
		b.Fatal(err)
	}
	if err := cl.SetStorage(0, "high", 10); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Advance(float64(i+1) * 900)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "accruals/s")
}

// TestLedgerSpotSplit: a spot-tier plan splits the elastic allocation
// between spot and on-demand VM-hours exactly as spotVMs resolves it, and
// bills the spot share at the discounted rate.
func TestLedgerSpotSplit(t *testing.T) {
	plan := PricingPlan{Name: "halfspot", SpotFraction: 0.5, SpotRate: 0.4}
	cl, err := New(DefaultVMClusters(), DefaultNFSClusters(), WithPricing(plan))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SetVMs(0, "standard", 10); err != nil {
		t.Fatal(err)
	}
	cl.Advance(3600)

	// 10 allocated, 0 reserved: spot = round(0.5×10) = 5, on-demand = 5.
	bill := cl.Ledger().Totals()
	if !approx(bill.SpotVMHours, 5, 1e-9) || !approx(bill.OnDemandVMHours, 5, 1e-9) {
		t.Errorf("VM-hour split spot=%v on-demand=%v, want 5/5", bill.SpotVMHours, bill.OnDemandVMHours)
	}
	if want := 5 * 0.450 * 0.4; !approx(bill.SpotUSD, want, 1e-9) {
		t.Errorf("spot bill %v, want %v", bill.SpotUSD, want)
	}
	if want := 5 * 0.450; !approx(bill.OnDemandUSD, want, 1e-9) {
		t.Errorf("on-demand bill %v, want %v", bill.OnDemandUSD, want)
	}
	if bill.Interruptions != 0 {
		t.Errorf("interruptions %d before any preemption", bill.Interruptions)
	}
}

// TestLedgerSpotAboveReservedTier: the spot fraction applies to the
// elastic allocation above the reserved count, never to reserved VMs.
func TestLedgerSpotAboveReservedTier(t *testing.T) {
	plan := PricingPlan{
		Name: "mixed", SpotFraction: 0.5, SpotRate: 0.4,
		ReservedFraction: 0.1, ReservedRate: 0.45, TermHours: 24,
	}
	cl, err := New(DefaultVMClusters(), DefaultNFSClusters(), WithPricing(plan))
	if err != nil {
		t.Fatal(err)
	}
	// standard MaxVMs=75 → reserved ⌈7.5⌉ = 8; allocate 20 → elastic 12,
	// spot round(6)=6, on-demand 6. Reserved hours also bill the idle
	// clusters' commitments (medium 3, advanced 5): 8+3+5 = 16.
	if err := cl.SetVMs(0, "standard", 20); err != nil {
		t.Fatal(err)
	}
	cl.Advance(3600)
	bill := cl.Ledger().Totals()
	if !approx(bill.ReservedVMHours, 16, 1e-9) || !approx(bill.SpotVMHours, 6, 1e-9) || !approx(bill.OnDemandVMHours, 6, 1e-9) {
		t.Errorf("tier split reserved=%v spot=%v on-demand=%v, want 16/6/6",
			bill.ReservedVMHours, bill.SpotVMHours, bill.OnDemandVMHours)
	}
}

// TestPreemptSpot: a mass-preemption kills exactly the spot share,
// reports the lost fraction of the whole allocation, and records the
// interruption event; degenerate inputs behave.
func TestPreemptSpot(t *testing.T) {
	plan := PricingPlan{Name: "halfspot", SpotFraction: 0.5, SpotRate: 0.4}
	cl, err := New(DefaultVMClusters(), DefaultNFSClusters(), WithPricing(plan))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SetVMs(0, "standard", 10); err != nil {
		t.Fatal(err)
	}
	killed, lost, err := cl.PreemptSpot(3600, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if killed != 5 || !approx(lost, 0.5, 1e-9) {
		t.Errorf("PreemptSpot killed %d lost %v, want 5 and 0.5", killed, lost)
	}
	if got, _ := cl.AllocatedVMs("standard"); got != 5 {
		t.Errorf("allocation after preemption %d, want 5", got)
	}
	if got := cl.Ledger().Totals().Interruptions; got != 1 {
		t.Errorf("interruptions %d, want 1", got)
	}

	if _, _, err := cl.PreemptSpot(3600, 1.5); err == nil {
		t.Error("fraction outside [0,1] accepted")
	}

	// On-demand plan: no spot tier, nothing to preempt.
	od, err := New(DefaultVMClusters(), DefaultNFSClusters())
	if err != nil {
		t.Fatal(err)
	}
	if err := od.SetVMs(0, "standard", 10); err != nil {
		t.Fatal(err)
	}
	killed, lost, err = od.PreemptSpot(3600, 1.0)
	if err != nil || killed != 0 || lost != 0 {
		t.Errorf("on-demand PreemptSpot = (%d, %v, %v), want no-op", killed, lost, err)
	}
	if got := od.Ledger().Totals().Interruptions; got != 0 {
		t.Errorf("on-demand plan recorded %d interruptions", got)
	}
}

// TestChargeTransfer: transfer dollars land in the bill and leave a note;
// non-positive charges are dropped.
func TestChargeTransfer(t *testing.T) {
	cl, err := New(DefaultVMClusters(), DefaultNFSClusters())
	if err != nil {
		t.Fatal(err)
	}
	l := cl.Ledger()
	l.ChargeTransfer(100, 2.5, "viewers failed over from us-east")
	l.ChargeTransfer(200, 0, "free")
	l.ChargeTransfer(300, -1, "refund")
	bill := l.Totals()
	if !approx(bill.TransferUSD, 2.5, 1e-9) {
		t.Errorf("transfer bill %v, want 2.5", bill.TransferUSD)
	}
	if !approx(bill.TotalUSD(), 2.5, 1e-9) {
		t.Errorf("TotalUSD %v does not include transfer dollars", bill.TotalUSD())
	}
	notes := l.Diagnostics()
	if len(notes) != 1 || !strings.Contains(notes[0].Msg, "us-east") {
		t.Errorf("diagnostics %+v, want one transfer note", notes)
	}
}

// TestSpotPricingPreset pins the shipped spot plan's shape.
func TestSpotPricingPreset(t *testing.T) {
	p := SpotPricing()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.SpotFraction != 0.7 || p.SpotRate != 0.3 || p.SpotInterruption != 0.25 {
		t.Errorf("SpotPricing = %+v", p)
	}
	if p.DisplayName() != "spot" {
		t.Errorf("display name %q", p.DisplayName())
	}
}
