package cloud

import (
	"testing"
)

// Float addition is not associative, so billing accrual must visit
// clusters in registration order rather than ranging the state maps: with
// Go's randomized map iteration the accrued cost would differ in the last
// ulp between otherwise identical runs, breaking bit-identical replay.
// The prices below are chosen so that different summation orders really
// do produce different doubles ((0.1+0.2)+0.3 != (0.3+0.2)+0.1).
func TestAccrualOrderIsDeterministic(t *testing.T) {
	vmSpecs := []VMClusterSpec{
		{Name: "a", Utility: 1, PricePerHour: 0.1, MaxVMs: 5},
		{Name: "b", Utility: 1, PricePerHour: 0.2, MaxVMs: 5},
		{Name: "c", Utility: 1, PricePerHour: 0.3, MaxVMs: 5},
	}
	nfsSpecs := []NFSClusterSpec{
		{Name: "x", Utility: 1, PricePerGBHour: 0.1, CapacityGB: 10},
		{Name: "y", Utility: 1, PricePerGBHour: 0.2, CapacityGB: 10},
		{Name: "z", Utility: 1, PricePerGBHour: 0.3, CapacityGB: 10},
	}
	// Registration-order sum, 1 VM / 1 GB each for 1h. Computed through
	// float64 variables so Go does runtime IEEE arithmetic instead of
	// folding the constants at arbitrary precision.
	p1, p2, p3 := 0.1, 0.2, 0.3
	wantVM := (p1 + p2) + p3
	wantNFS := (p1 + p2) + p3
	for i := 0; i < 50; i++ {
		c, err := New(vmSpecs, nfsSpecs)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		for _, name := range []string{"a", "b", "c"} {
			if err := c.SetVMs(0, name, 1); err != nil {
				t.Fatalf("SetVMs(%s): %v", name, err)
			}
		}
		for _, name := range []string{"x", "y", "z"} {
			if err := c.SetStorage(0, name, 1); err != nil {
				t.Fatalf("SetStorage(%s): %v", name, err)
			}
		}
		c.Advance(3600)
		vmCost, storageCost := c.Costs()
		if vmCost != wantVM {
			t.Fatalf("run %d: vmCost = %.20g, want registration-order sum %.20g", i, vmCost, wantVM)
		}
		if storageCost != wantNFS {
			t.Fatalf("run %d: storageCost = %.20g, want registration-order sum %.20g", i, storageCost, wantNFS)
		}
	}
}
