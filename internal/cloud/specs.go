package cloud

import "fmt"

// VMClusterSpec describes one virtual cluster: VMs of identical
// configuration available for rental (Table II).
type VMClusterSpec struct {
	Name         string  // cluster identifier, e.g. "standard"
	Utility      float64 // performance factor ũ_v (higher is better)
	MemoryMB     int     // VM memory
	CPUMHz       int     // VM CPU allocation
	DiskGB       int     // VM local disk
	PricePerHour float64 // rental price p̃_v, dollars per VM-hour
	MaxVMs       int     // N_v: VMs the cluster can provision
}

// Validate checks spec invariants.
func (s VMClusterSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("cloud: VM cluster with empty name")
	case s.Utility <= 0:
		return fmt.Errorf("cloud: VM cluster %q: non-positive utility %v", s.Name, s.Utility)
	case s.PricePerHour <= 0:
		return fmt.Errorf("cloud: VM cluster %q: non-positive price %v", s.Name, s.PricePerHour)
	case s.MaxVMs <= 0:
		return fmt.Errorf("cloud: VM cluster %q: non-positive capacity %d", s.Name, s.MaxVMs)
	}
	return nil
}

// MarginalUtility returns ũ_v/p̃_v, the sort key of the VM configuration
// heuristic (Sec. V-A2).
func (s VMClusterSpec) MarginalUtility() float64 { return s.Utility / s.PricePerHour }

// NFSClusterSpec describes one NFS storage cluster (Table III).
type NFSClusterSpec struct {
	Name           string  // cluster identifier, e.g. "high"
	Utility        float64 // performance factor u_f
	RotationRPM    int     // disk rotation speed, descriptive only
	PricePerGBHour float64 // storage price p_f, dollars per GB-hour
	CapacityGB     float64 // S_f: storage capacity
}

// Validate checks spec invariants.
func (s NFSClusterSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("cloud: NFS cluster with empty name")
	case s.Utility <= 0:
		return fmt.Errorf("cloud: NFS cluster %q: non-positive utility %v", s.Name, s.Utility)
	case s.PricePerGBHour <= 0:
		return fmt.Errorf("cloud: NFS cluster %q: non-positive price %v", s.Name, s.PricePerGBHour)
	case s.CapacityGB <= 0:
		return fmt.Errorf("cloud: NFS cluster %q: non-positive capacity %v", s.Name, s.CapacityGB)
	}
	return nil
}

// MarginalUtility returns u_f/p_f, the sort key of the storage rental
// heuristic (Sec. V-A1).
func (s NFSClusterSpec) MarginalUtility() float64 { return s.Utility / s.PricePerGBHour }

// DefaultVMBandwidth is the bandwidth allocated to every VM in the paper's
// testbed: 10 Mbps, expressed in bytes per second.
const DefaultVMBandwidth = 10e6 / 8

// DefaultBootSeconds is the measured VM launch latency of Sec. VI-C.
const DefaultBootSeconds = 25.0

// DefaultShutdownSeconds reflects "even less time to shut it down".
const DefaultShutdownSeconds = 10.0

// DefaultVMClusters returns Table II exactly.
func DefaultVMClusters() []VMClusterSpec {
	return []VMClusterSpec{
		{Name: "standard", Utility: 0.6, MemoryMB: 128, CPUMHz: 500, DiskGB: 5, PricePerHour: 0.450, MaxVMs: 75},
		{Name: "medium", Utility: 0.8, MemoryMB: 192, CPUMHz: 500, DiskGB: 5, PricePerHour: 0.700, MaxVMs: 30},
		{Name: "advanced", Utility: 1.0, MemoryMB: 256, CPUMHz: 500, DiskGB: 5, PricePerHour: 0.800, MaxVMs: 45},
	}
}

// DefaultNFSClusters returns Table III exactly.
func DefaultNFSClusters() []NFSClusterSpec {
	return []NFSClusterSpec{
		{Name: "standard", Utility: 0.8, RotationRPM: 7200, PricePerGBHour: 1.11e-4, CapacityGB: 20},
		{Name: "high", Utility: 1.0, RotationRPM: 10800, PricePerGBHour: 2.08e-4, CapacityGB: 20},
	}
}
