// Package cloud simulates the IaaS infrastructure of Sec. III-A: virtual
// clusters of VMs and NFS storage clusters, fronted by the broker / SLA
// negotiator / request monitor / scheduler modules of Fig. 1, with
// usage-time billing following the Amazon EC2/S3 charging model.
//
// The paper's evaluation exercises four properties of the physical testbed,
// all of which are modelled explicitly:
//
//   - cluster catalogs — Tables II and III ship as DefaultVMClusters and
//     DefaultNFSClusters;
//   - per-VM bandwidth — every VM is allocated a fixed R (10 Mbps);
//   - VM lifecycle latency — launching a VM takes ~25 s (shutdown is
//     quicker), and launches proceed in parallel;
//   - billing — VM rental is charged per allocated VM-hour and storage per
//     GB-hour, integrated continuously over simulated time. Alongside the
//     paper's literal catalog-price accounting (Costs), a Ledger bills the
//     same allocation trajectory under a PricingPlan with reserved and
//     on-demand tiers, splitting dollars per tier and per provisioning
//     interval (Checkpoint) — see DESIGN.md "Pricing and the billing
//     ledger".
//
// Time is an explicit float64 of simulated seconds supplied by the caller;
// the package never consults the wall clock, keeping experiments
// deterministic and fast.
package cloud
