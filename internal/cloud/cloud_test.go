package cloud

import (
	"errors"
	"testing"

	"cloudmedia/internal/mathx"
)

func newTestCloud(t *testing.T, opts ...Option) *Cloud {
	t.Helper()
	c, err := New(DefaultVMClusters(), DefaultNFSClusters(), opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestDefaultCatalogsMatchPaperTables(t *testing.T) {
	vms := DefaultVMClusters()
	if len(vms) != 3 {
		t.Fatalf("Table II has 3 clusters, got %d", len(vms))
	}
	if vms[0].PricePerHour != 0.450 || vms[0].MaxVMs != 75 || vms[0].Utility != 0.6 {
		t.Errorf("standard cluster mismatch: %+v", vms[0])
	}
	if vms[1].PricePerHour != 0.700 || vms[1].MaxVMs != 30 || vms[1].Utility != 0.8 {
		t.Errorf("medium cluster mismatch: %+v", vms[1])
	}
	if vms[2].PricePerHour != 0.800 || vms[2].MaxVMs != 45 || vms[2].Utility != 1.0 {
		t.Errorf("advanced cluster mismatch: %+v", vms[2])
	}
	nfs := DefaultNFSClusters()
	if len(nfs) != 2 {
		t.Fatalf("Table III has 2 clusters, got %d", len(nfs))
	}
	if nfs[0].PricePerGBHour != 1.11e-4 || nfs[0].CapacityGB != 20 {
		t.Errorf("standard NFS mismatch: %+v", nfs[0])
	}
	if nfs[1].PricePerGBHour != 2.08e-4 || nfs[1].CapacityGB != 20 {
		t.Errorf("high NFS mismatch: %+v", nfs[1])
	}
	// Marginal utility ordering drives both heuristics: standard VM wins.
	if !(vms[0].MarginalUtility() > vms[2].MarginalUtility() && vms[2].MarginalUtility() > vms[1].MarginalUtility()) {
		t.Errorf("unexpected marginal utility order: %v %v %v",
			vms[0].MarginalUtility(), vms[1].MarginalUtility(), vms[2].MarginalUtility())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("no VM clusters: want error")
	}
	dup := []VMClusterSpec{
		{Name: "a", Utility: 1, PricePerHour: 1, MaxVMs: 1},
		{Name: "a", Utility: 1, PricePerHour: 1, MaxVMs: 1},
	}
	if _, err := New(dup, nil); err == nil {
		t.Error("duplicate VM cluster: want error")
	}
	bad := []VMClusterSpec{{Name: "", Utility: 1, PricePerHour: 1, MaxVMs: 1}}
	if _, err := New(bad, nil); err == nil {
		t.Error("invalid VM spec: want error")
	}
	badNFS := []NFSClusterSpec{{Name: "x", Utility: 0, PricePerGBHour: 1, CapacityGB: 1}}
	if _, err := New(DefaultVMClusters(), badNFS); err == nil {
		t.Error("invalid NFS spec: want error")
	}
}

func TestVMLifecycleBootLatency(t *testing.T) {
	c := newTestCloud(t)
	if err := c.SetVMs(0, "standard", 10); err != nil {
		t.Fatalf("SetVMs: %v", err)
	}
	if got, _ := c.AllocatedVMs("standard"); got != 10 {
		t.Errorf("allocated = %d, want 10", got)
	}
	// Before boot completes no VM serves traffic.
	if got, _ := c.ActiveVMs(24.9, "standard"); got != 0 {
		t.Errorf("active at 24.9 s = %d, want 0 (boot takes 25 s)", got)
	}
	// VMs launch in parallel: all 10 become active together.
	if got, _ := c.ActiveVMs(25.1, "standard"); got != 10 {
		t.Errorf("active at 25.1 s = %d, want 10", got)
	}
	if got := c.TotalActiveVMs(30); got != 10 {
		t.Errorf("TotalActiveVMs = %d, want 10", got)
	}
	wantBW := 10 * DefaultVMBandwidth
	if got := c.ActiveBandwidth(30); !mathx.ApproxEqual(got, wantBW, 1e-9) {
		t.Errorf("ActiveBandwidth = %v, want %v", got, wantBW)
	}
}

func TestVMScaleDownReleasesBootingFirst(t *testing.T) {
	c := newTestCloud(t)
	if err := c.SetVMs(0, "standard", 5); err != nil {
		t.Fatalf("SetVMs: %v", err)
	}
	// At t=100 the 5 are active; request 5 more, then immediately scale to 7:
	// the 3 released VMs must come from the booting batch.
	if err := c.SetVMs(100, "standard", 10); err != nil {
		t.Fatalf("SetVMs: %v", err)
	}
	if err := c.SetVMs(101, "standard", 7); err != nil {
		t.Fatalf("SetVMs: %v", err)
	}
	if got, _ := c.ActiveVMs(110, "standard"); got != 5 {
		t.Errorf("active at 110 = %d, want 5 (2 still booting)", got)
	}
	if got, _ := c.ActiveVMs(130, "standard"); got != 7 {
		t.Errorf("active at 130 = %d, want 7", got)
	}
}

func TestVMCapacityLimit(t *testing.T) {
	c := newTestCloud(t)
	if err := c.SetVMs(0, "medium", 31); !errors.Is(err, ErrCapacity) {
		t.Errorf("over capacity: err = %v, want ErrCapacity", err)
	}
	if err := c.SetVMs(0, "nope", 1); !errors.Is(err, ErrUnknownCluster) {
		t.Errorf("unknown cluster: err = %v, want ErrUnknownCluster", err)
	}
	if err := c.SetVMs(0, "medium", -1); err == nil {
		t.Error("negative target: want error")
	}
}

func TestBillingVMHours(t *testing.T) {
	c := newTestCloud(t)
	// 10 standard VMs for exactly 2 hours: 10 × $0.45 × 2 = $9.
	if err := c.SetVMs(0, "standard", 10); err != nil {
		t.Fatalf("SetVMs: %v", err)
	}
	c.Advance(7200)
	vm, storage := c.Costs()
	if !mathx.ApproxEqual(vm, 9, 1e-9) {
		t.Errorf("vm cost = %v, want 9", vm)
	}
	if storage != 0 {
		t.Errorf("storage cost = %v, want 0", storage)
	}
	// Scale to zero: no further accrual.
	if err := c.SetVMs(7200, "standard", 0); err != nil {
		t.Fatalf("SetVMs: %v", err)
	}
	c.Advance(14400)
	vm2, _ := c.Costs()
	if !mathx.ApproxEqual(vm2, 9, 1e-9) {
		t.Errorf("vm cost after release = %v, want 9", vm2)
	}
}

func TestBillingMixedClusters(t *testing.T) {
	c := newTestCloud(t)
	if err := c.SetVMs(0, "standard", 4); err != nil {
		t.Fatal(err)
	}
	if err := c.SetVMs(0, "advanced", 2); err != nil {
		t.Fatal(err)
	}
	c.Advance(3600)
	vm, _ := c.Costs()
	want := 4*0.45 + 2*0.80
	if !mathx.ApproxEqual(vm, want, 1e-9) {
		t.Errorf("vm cost = %v, want %v", vm, want)
	}
}

func TestBillingStorage(t *testing.T) {
	c := newTestCloud(t)
	// 6 GB on high for 24 h: 6 × 2.08e-4 × 24 ≈ $0.03.
	if err := c.SetStorage(0, "high", 6); err != nil {
		t.Fatalf("SetStorage: %v", err)
	}
	c.Advance(24 * 3600)
	_, storage := c.Costs()
	if !mathx.ApproxEqual(storage, 6*2.08e-4*24, 1e-9) {
		t.Errorf("storage cost = %v", storage)
	}
}

func TestStorageCapacityAndErrors(t *testing.T) {
	c := newTestCloud(t)
	if err := c.SetStorage(0, "high", 25); !errors.Is(err, ErrCapacity) {
		t.Errorf("over capacity: err = %v, want ErrCapacity", err)
	}
	if err := c.SetStorage(0, "nope", 1); !errors.Is(err, ErrUnknownCluster) {
		t.Errorf("unknown cluster: err = %v", err)
	}
	if err := c.SetStorage(0, "high", -1); err == nil {
		t.Error("negative GB: want error")
	}
	if err := c.SetStorage(0, "high", 12); err != nil {
		t.Fatalf("SetStorage: %v", err)
	}
	if gb, _ := c.StoredGB("high"); gb != 12 {
		t.Errorf("StoredGB = %v, want 12", gb)
	}
}

func TestBillingMonotoneTime(t *testing.T) {
	c := newTestCloud(t)
	if err := c.SetVMs(0, "standard", 1); err != nil {
		t.Fatal(err)
	}
	c.Advance(3600)
	c.Advance(1800) // going backwards must not un-bill
	vm, _ := c.Costs()
	if !mathx.ApproxEqual(vm, 0.45, 1e-9) {
		t.Errorf("vm cost = %v, want 0.45", vm)
	}
}

func TestResetCosts(t *testing.T) {
	c := newTestCloud(t)
	if err := c.SetVMs(0, "standard", 1); err != nil {
		t.Fatal(err)
	}
	c.Advance(3600)
	c.ResetCosts()
	vm, storage := c.Costs()
	if vm != 0 || storage != 0 {
		t.Errorf("costs after reset = %v, %v", vm, storage)
	}
}

func TestCustomLatencyAndBandwidthOptions(t *testing.T) {
	c, err := New(DefaultVMClusters(), nil, WithBootLatency(5), WithVMBandwidth(2e6))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.BootLatency() != 5 || c.VMBandwidth() != 2e6 {
		t.Errorf("options not applied: boot=%v bw=%v", c.BootLatency(), c.VMBandwidth())
	}
	if _, err := New(DefaultVMClusters(), nil, WithVMBandwidth(-1)); err == nil {
		t.Error("negative bandwidth: want error")
	}
	if _, err := New(DefaultVMClusters(), nil, WithBootLatency(-1)); err == nil {
		t.Error("negative boot latency: want error")
	}
}

func TestFailVMs(t *testing.T) {
	c := newTestCloud(t)
	if err := c.SetVMs(0, "standard", 10); err != nil {
		t.Fatal(err)
	}
	c.Advance(3600) // one hour of 10 VMs
	failed, err := c.FailVMs(3600, "standard", 4)
	if err != nil {
		t.Fatalf("FailVMs: %v", err)
	}
	if failed != 4 {
		t.Errorf("failed = %d, want 4", failed)
	}
	if got, _ := c.AllocatedVMs("standard"); got != 6 {
		t.Errorf("allocated = %d, want 6", got)
	}
	if got, _ := c.ActiveVMs(3601, "standard"); got != 6 {
		t.Errorf("active = %d, want 6", got)
	}
	// Billing: hour 1 at 10 VMs, hour 2 at 6 VMs.
	c.Advance(7200)
	vm, _ := c.Costs()
	want := 10*0.45 + 6*0.45
	if !mathx.ApproxEqual(vm, want, 1e-9) {
		t.Errorf("cost = %v, want %v", vm, want)
	}
}

func TestFailVMsClampsAndValidates(t *testing.T) {
	c := newTestCloud(t)
	if err := c.SetVMs(0, "standard", 3); err != nil {
		t.Fatal(err)
	}
	failed, err := c.FailVMs(1, "standard", 99)
	if err != nil {
		t.Fatalf("FailVMs: %v", err)
	}
	if failed != 3 {
		t.Errorf("failed = %d, want all 3", failed)
	}
	if _, err := c.FailVMs(1, "ghost", 1); !errors.Is(err, ErrUnknownCluster) {
		t.Errorf("unknown cluster: %v", err)
	}
	if _, err := c.FailVMs(1, "standard", -1); err == nil {
		t.Error("negative count accepted")
	}
}

func TestFailVMsKillsBootingFirst(t *testing.T) {
	c := newTestCloud(t)
	if err := c.SetVMs(0, "standard", 5); err != nil {
		t.Fatal(err)
	}
	// 5 active at t=100; request 5 more (booting), then fail 3.
	if err := c.SetVMs(100, "standard", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FailVMs(101, "standard", 3); err != nil {
		t.Fatal(err)
	}
	// The 3 failures consumed booting instances: 5 originals stay active,
	// 2 boots remain.
	if got, _ := c.ActiveVMs(110, "standard"); got != 5 {
		t.Errorf("active at 110 = %d, want 5", got)
	}
	if got, _ := c.ActiveVMs(130, "standard"); got != 7 {
		t.Errorf("active at 130 = %d, want 7", got)
	}
}
