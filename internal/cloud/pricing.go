package cloud

import (
	"fmt"
	"math"
)

// PricingPlan describes how rented resources turn into dollars: an
// on-demand tier (the paper's literal pay-as-you-go pricing) plus an
// optional reserved tier — a fraction of every VM cluster committed for a
// term at a discounted hourly rate in exchange for an upfront fee, the
// reserved-instance model of real IaaS price lists. The zero value is the
// pure on-demand plan. All rate fields are multipliers on the catalog
// prices (Table II/III), so one plan applies to any cluster catalog.
type PricingPlan struct {
	// Name identifies the plan in CLI/CSV output; "" means "on-demand".
	Name string
	// OnDemandRate multiplies the catalog hourly VM price for on-demand
	// VM-hours; 0 means 1 (the catalog price as-is).
	OnDemandRate float64
	// ReservedFraction is the fraction of each VM cluster's capacity
	// (MaxVMs) reserved for every term; 0 disables the reserved tier.
	// Reserved counts round up, so any positive fraction reserves at
	// least one VM per cluster.
	ReservedFraction float64
	// ReservedRate multiplies the catalog hourly VM price for reserved
	// capacity. Reserved VMs bill every hour of the term, used or idle —
	// that is the commitment being discounted.
	ReservedRate float64
	// TermHours is the reservation term; the upfront fee recharges at
	// each term start. Required when ReservedFraction > 0.
	TermHours float64
	// UpfrontFraction is the upfront fee per reserved VM and term, as a
	// fraction of that VM's on-demand cost for the whole term.
	UpfrontFraction float64
	// StorageRate multiplies the catalog GB-hour price; 0 means 1.
	StorageRate float64

	// SpotFraction is the fraction of each cluster's elastic allocation
	// (above the reserved count) that is fulfilled from the spot market;
	// 0 disables the spot tier. Spot counts round to nearest, so a small
	// elastic allocation can land entirely on either tier.
	SpotFraction float64
	// SpotRate multiplies the catalog hourly VM price for spot VM-hours;
	// 0 means 1 (no discount — a degenerate but legal plan).
	SpotRate float64
	// SpotInterruption is the per-hour probability that the provider
	// mass-preempts spot capacity. The billing ledger never rolls this
	// die itself: internal/fault drives the seeded interruption process
	// through the simulation backend, so runs stay deterministic per
	// seed. Plans price the risk; faults realize it.
	SpotInterruption float64
}

// OnDemandPricing returns the paper's literal pricing: every VM-hour and
// GB-hour at the catalog price, no reservations.
func OnDemandPricing() PricingPlan {
	return PricingPlan{Name: "on-demand"}
}

// ReservedPricing returns a reservation-heavy plan: 10% of every VM
// cluster committed per day at 45% of the catalog hourly rate plus a 25%
// upfront, overflow at the on-demand rate. For capacity that is busy
// around the clock this prices a VM-hour at 0.45+0.25 = 0.70× on-demand;
// capacity idle most of the day costs more than renting on demand —
// exactly the trade-off the costfrontier experiment measures. The 10%
// commitment is sized against the reduced-scale default scenario, where
// it covers the diurnal base load and leaves the daily swell on the
// on-demand tier (≈22 standard-VM-equivalents average at scale 1).
func ReservedPricing() PricingPlan {
	return PricingPlan{
		Name:             "reserved",
		ReservedFraction: 0.1,
		ReservedRate:     0.45,
		TermHours:        24,
		UpfrontFraction:  0.25,
	}
}

// SpotPricing returns a spot-heavy plan: 70% of every elastic allocation
// fulfilled from the spot market at 30% of the catalog rate, with a 25%
// per-hour chance of a mass-preemption event (realized by internal/fault's
// seeded process, never by the ledger). The blended VM-hour lands near
// 0.5× on-demand — the real-world spot bargain — but only policies that
// hedge the interruption risk keep quality through the preemptions, which
// is exactly the trade the resilience experiment measures.
func SpotPricing() PricingPlan {
	return PricingPlan{
		Name:             "spot",
		SpotFraction:     0.7,
		SpotRate:         0.3,
		SpotInterruption: 0.25,
	}
}

// ParsePricing converts a command-line spelling into a PricingPlan. It
// accepts "on-demand" (or "ondemand"), "reserved", and "spot".
func ParsePricing(s string) (PricingPlan, error) {
	switch s {
	case "on-demand", "ondemand":
		return OnDemandPricing(), nil
	case "reserved":
		return ReservedPricing(), nil
	case "spot":
		return SpotPricing(), nil
	default:
		return PricingPlan{}, fmt.Errorf("unknown pricing plan %q (want on-demand, reserved, or spot)", s)
	}
}

// PricingNames lists the ParsePricing spellings, for CLI help and sweeps.
func PricingNames() []string { return []string{"on-demand", "reserved", "spot"} }

// Validate checks plan invariants.
func (p PricingPlan) Validate() error {
	switch {
	case p.OnDemandRate < 0:
		return fmt.Errorf("cloud: pricing %q: negative on-demand rate %v", p.DisplayName(), p.OnDemandRate)
	case p.ReservedFraction < 0 || p.ReservedFraction > 1:
		return fmt.Errorf("cloud: pricing %q: reserved fraction %v outside [0,1]", p.DisplayName(), p.ReservedFraction)
	case p.ReservedRate < 0:
		return fmt.Errorf("cloud: pricing %q: negative reserved rate %v", p.DisplayName(), p.ReservedRate)
	case p.UpfrontFraction < 0:
		return fmt.Errorf("cloud: pricing %q: negative upfront fraction %v", p.DisplayName(), p.UpfrontFraction)
	case p.StorageRate < 0:
		return fmt.Errorf("cloud: pricing %q: negative storage rate %v", p.DisplayName(), p.StorageRate)
	case p.ReservedFraction > 0 && p.TermHours <= 0:
		return fmt.Errorf("cloud: pricing %q: reserved tier needs a positive term, got %v h", p.DisplayName(), p.TermHours)
	case p.TermHours < 0:
		return fmt.Errorf("cloud: pricing %q: negative term %v h", p.DisplayName(), p.TermHours)
	case p.SpotFraction < 0 || p.SpotFraction > 1:
		return fmt.Errorf("cloud: pricing %q: spot fraction %v outside [0,1]", p.DisplayName(), p.SpotFraction)
	case p.SpotRate < 0:
		return fmt.Errorf("cloud: pricing %q: negative spot rate %v", p.DisplayName(), p.SpotRate)
	case p.SpotInterruption < 0 || p.SpotInterruption > 1:
		return fmt.Errorf("cloud: pricing %q: spot interruption probability %v outside [0,1]", p.DisplayName(), p.SpotInterruption)
	}
	return nil
}

// DisplayName returns Name, spelling the zero value "on-demand".
func (p PricingPlan) DisplayName() string {
	if p.Name == "" {
		return "on-demand"
	}
	return p.Name
}

// onDemandRate returns the normalized on-demand multiplier.
func (p PricingPlan) onDemandRate() float64 {
	if p.OnDemandRate == 0 {
		return 1
	}
	return p.OnDemandRate
}

// storageRate returns the normalized storage multiplier.
func (p PricingPlan) storageRate() float64 {
	if p.StorageRate == 0 {
		return 1
	}
	return p.StorageRate
}

// spotRate returns the normalized spot multiplier.
func (p PricingPlan) spotRate() float64 {
	if p.SpotRate == 0 {
		return 1
	}
	return p.SpotRate
}

// spotVMs returns how many of a cluster's elastic VMs (allocation above
// the reserved count) are spot instances: SpotFraction × elastic, rounded
// to nearest with the same 1e-9 epsilon guard reservedVMs uses so binary
// float artifacts never flip a whole count.
func (p PricingPlan) spotVMs(elastic int) int {
	if p.SpotFraction <= 0 || elastic <= 0 {
		return 0
	}
	n := int(math.Floor(p.SpotFraction*float64(elastic) + 0.5 + 1e-9))
	if n > elastic {
		n = elastic
	}
	return n
}

// reservedVMs returns the reserved-instance count for a cluster of the
// given capacity: ⌈fraction × capacity⌉, with an epsilon so binary float
// artifacts (0.2 × 75 = 15.000…002) do not round a whole count up.
func (p PricingPlan) reservedVMs(maxVMs int) int {
	if p.ReservedFraction <= 0 {
		return 0
	}
	n := int(math.Ceil(p.ReservedFraction*float64(maxVMs) - 1e-9))
	if n > maxVMs {
		n = maxVMs
	}
	return n
}
