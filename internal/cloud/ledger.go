package cloud

import (
	"fmt"
	"sync"
)

// LedgerTotals is one billing aggregate: resource-hours and dollars split
// by tier. It is both the run's cumulative bill (Ledger.Totals) and the
// per-interval accrual attached to every provisioning record
// (Ledger.Checkpoint).
type LedgerTotals struct {
	// ReservedVMHours is the committed capacity billed at the reserved
	// rate (every reserved VM, every hour of the term, used or idle).
	ReservedVMHours float64
	// OnDemandVMHours is the elastic allocation above the reserved count
	// that the plan keeps off the spot market, billed at the on-demand
	// rate.
	OnDemandVMHours float64
	// SpotVMHours is the elastic allocation fulfilled from the spot
	// market (PricingPlan.SpotFraction of every cluster's elastic VMs),
	// billed at the discounted spot rate.
	SpotVMHours float64
	// GBHours is the NFS storage footprint integrated over time.
	GBHours float64
	// Interruptions counts the spot mass-preemption events charged to
	// this window (fault injection's realized interruption process).
	Interruptions int

	// ReservedUSD, OnDemandUSD, SpotUSD, UpfrontUSD, StorageUSD, and
	// TransferUSD split the dollars by tier; TotalUSD sums them.
	ReservedUSD float64
	OnDemandUSD float64
	SpotUSD     float64
	UpfrontUSD  float64
	StorageUSD  float64
	// TransferUSD is the inter-region data-transfer spend: viewer
	// migration during cross-region failover, charged to the region the
	// viewers move into.
	TransferUSD float64
}

// TotalUSD is the all-in bill.
func (t LedgerTotals) TotalUSD() float64 {
	return t.ReservedUSD + t.OnDemandUSD + t.SpotUSD + t.UpfrontUSD + t.StorageUSD + t.TransferUSD
}

// VMCostUSD is the VM share of the bill (reserved + upfront + on-demand +
// spot).
func (t LedgerTotals) VMCostUSD() float64 {
	return t.ReservedUSD + t.OnDemandUSD + t.SpotUSD + t.UpfrontUSD
}

func (t *LedgerTotals) add(o LedgerTotals) {
	t.ReservedVMHours += o.ReservedVMHours
	t.OnDemandVMHours += o.OnDemandVMHours
	t.SpotVMHours += o.SpotVMHours
	t.GBHours += o.GBHours
	t.Interruptions += o.Interruptions
	t.ReservedUSD += o.ReservedUSD
	t.OnDemandUSD += o.OnDemandUSD
	t.SpotUSD += o.SpotUSD
	t.UpfrontUSD += o.UpfrontUSD
	t.StorageUSD += o.StorageUSD
	t.TransferUSD += o.TransferUSD
}

// Note is one ledger diagnostic: a timestamped event worth surfacing with
// the bill, e.g. a provisioning round whose budget was infeasible.
type Note struct {
	Time float64
	Msg  string
}

// Ledger accrues a run's cloud bill under a PricingPlan: VM-hours split
// reserved/on-demand, GB-hours, upfront reservation fees at each term
// start, and dollars per tier. The Cloud drives it from the same billing
// integrator that maintains the legacy cost counters, so ledger totals
// cover exactly the same simulated time. All methods are safe for
// concurrent use.
type Ledger struct {
	mu   sync.Mutex
	plan PricingPlan

	// reserved and upfrontPerTerm are resolved against the catalog once,
	// in registration order, so accrual is deterministic.
	reserved       map[string]int
	upfrontPerTerm float64
	nextTerm       float64

	totals   LedgerTotals
	interval LedgerTotals
	notes    []Note
}

// vmUsage is one VM cluster's allocation over an accrual window, in
// catalog registration order (keeping float accumulation deterministic).
type vmUsage struct {
	name      string
	price     float64 // catalog $/VM-hour
	allocated int
}

// storageUsage is one NFS cluster's footprint over an accrual window.
type storageUsage struct {
	price float64 // catalog $/GB-hour
	gb    float64
}

// newLedger resolves the plan against the catalog and charges the first
// term's upfront fee at t=0.
func newLedger(plan PricingPlan, vmSpecs []VMClusterSpec) *Ledger {
	l := &Ledger{plan: plan, reserved: make(map[string]int, len(vmSpecs))}
	for _, s := range vmSpecs {
		n := plan.reservedVMs(s.MaxVMs)
		l.reserved[s.Name] = n
		l.upfrontPerTerm += float64(n) * s.PricePerHour * plan.onDemandRate() * plan.TermHours * plan.UpfrontFraction
	}
	if l.upfrontPerTerm > 0 {
		l.chargeUpfrontLocked()
		l.nextTerm = plan.TermHours * 3600 // simulated seconds
	}
	return l
}

// Plan returns the pricing plan the ledger bills under.
func (l *Ledger) Plan() PricingPlan { return l.plan }

// ReservedVMs returns the resolved reserved-instance count for a cluster.
func (l *Ledger) ReservedVMs(cluster string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reserved[cluster]
}

func (l *Ledger) chargeUpfrontLocked() {
	l.totals.UpfrontUSD += l.upfrontPerTerm
	l.interval.UpfrontUSD += l.upfrontPerTerm
}

// accrue integrates the bill over [from, to) given the per-cluster
// allocations (constant across the window — the Cloud calls it before
// every allocation change). vms and nfs are in catalog registration
// order, keeping float accumulation deterministic.
func (l *Ledger) accrue(from, to float64, vms []vmUsage, nfs []storageUsage) {
	if to <= from {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// Recharge the upfront fee for every term that starts inside the
	// window (terms are aligned to t=0; the first term is charged at
	// construction).
	for l.upfrontPerTerm > 0 && l.nextTerm < to {
		l.chargeUpfrontLocked()
		l.nextTerm += l.plan.TermHours * 3600
	}
	hours := (to - from) / 3600
	var inc LedgerTotals
	for _, u := range vms {
		reserved := l.reserved[u.name]
		if reserved > 0 {
			inc.ReservedVMHours += float64(reserved) * hours
			inc.ReservedUSD += float64(reserved) * u.price * l.plan.ReservedRate * hours
		}
		if elastic := u.allocated - reserved; elastic > 0 {
			spot := l.plan.spotVMs(elastic)
			if spot > 0 {
				inc.SpotVMHours += float64(spot) * hours
				inc.SpotUSD += float64(spot) * u.price * l.plan.spotRate() * hours
			}
			if onDemand := elastic - spot; onDemand > 0 {
				inc.OnDemandVMHours += float64(onDemand) * hours
				inc.OnDemandUSD += float64(onDemand) * u.price * l.plan.onDemandRate() * hours
			}
		}
	}
	for _, u := range nfs {
		inc.GBHours += u.gb * hours
		inc.StorageUSD += u.gb * u.price * l.plan.storageRate() * hours
	}
	l.totals.add(inc)
	l.interval.add(inc)
}

// Totals returns the cumulative bill accrued so far.
func (l *Ledger) Totals() LedgerTotals {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totals
}

// Checkpoint returns the bill accrued since the previous Checkpoint (or
// since the start of the run) and starts a fresh interval accumulator —
// the controller calls it once per provisioning round to stamp each
// IntervalRecord with the interval's dollars.
func (l *Ledger) Checkpoint() LedgerTotals {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.interval
	l.interval = LedgerTotals{}
	return out
}

// RecordInterruption charges one spot mass-preemption event to the bill
// (the event counter, not dollars — the dollars show up as the re-rented
// replacement capacity) together with a diagnostic note.
func (l *Ledger) RecordInterruption(now float64, vmsKilled int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.totals.Interruptions++
	l.interval.Interruptions++
	l.notes = append(l.notes, Note{Time: now, Msg: fmt.Sprintf("spot interruption: %d VMs preempted", vmsKilled)})
}

// ChargeTransfer adds inter-region transfer dollars to the bill — the
// failover path charges the migrated viewers' handoff bytes to the region
// they move into.
func (l *Ledger) ChargeTransfer(now float64, usd float64, why string) {
	if usd <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.totals.TransferUSD += usd
	l.interval.TransferUSD += usd
	l.notes = append(l.notes, Note{Time: now, Msg: fmt.Sprintf("transfer $%.2f: %s", usd, why)})
}

// Notef appends a timestamped diagnostic to the ledger — infeasible
// budgets, failed storage plans, and similar events that explain a bill.
func (l *Ledger) Notef(now float64, format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.notes = append(l.notes, Note{Time: now, Msg: fmt.Sprintf(format, args...)})
}

// Diagnostics returns a copy of the accumulated notes, oldest first.
func (l *Ledger) Diagnostics() []Note {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Note, len(l.notes))
	copy(out, l.notes)
	return out
}

// reset zeroes the accrued totals, interval accumulator, and notes (used
// when an experiment discards a warm-up period). Reservation terms keep
// their original t=0 alignment.
func (l *Ledger) reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.totals, l.interval = LedgerTotals{}, LedgerTotals{}
	l.notes = nil
}
