package cloud

import (
	"fmt"
	"sort"
	"sync"
)

// sortedKeys returns the map's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Catalog is the information the SLA negotiator exposes to a consumer
// during negotiation: the cluster specs plus current availability.
type Catalog struct {
	VMBandwidth float64 // R in bytes/s, part of the QoS agreement
	VMClusters  []VMClusterAvailability
	NFSClusters []NFSClusterAvailability
}

// VMClusterAvailability pairs a VM cluster spec with its free capacity.
type VMClusterAvailability struct {
	Spec         VMClusterSpec
	AvailableVMs int // MaxVMs − currently allocated
}

// NFSClusterAvailability pairs an NFS cluster spec with its free capacity.
type NFSClusterAvailability struct {
	Spec        NFSClusterSpec
	AvailableGB float64 // CapacityGB − currently stored
}

// Request is a consumer's resource reconfiguration: absolute targets per
// cluster, matching the paper's periodic SLA updates. Omitted clusters are
// left unchanged.
type Request struct {
	Time      float64            // simulated submission time
	VMTargets map[string]int     // cluster name → VM count
	StorageGB map[string]float64 // NFS cluster name → stored GB
}

// Broker is the communication interface between the VoD provider and the
// cloud (Fig. 1). It performs SLA negotiation (Catalog), forwards requests
// through the request monitor (Submit), and keeps the request log the
// monitor maintains.
type Broker struct {
	cloud *Cloud

	mu  sync.Mutex
	log []Request
}

// NewBroker attaches a broker to a cloud.
func NewBroker(c *Cloud) (*Broker, error) {
	if c == nil {
		return nil, fmt.Errorf("cloud: nil cloud")
	}
	return &Broker{cloud: c}, nil
}

// Negotiate returns the current catalog: prices, QoS (per-VM bandwidth) and
// availability. The controller calls this at the start of every
// provisioning interval (Sec. V-B).
func (b *Broker) Negotiate() Catalog {
	cat := Catalog{VMBandwidth: b.cloud.VMBandwidth()}
	for _, spec := range b.cloud.VMClusters() {
		allocated, err := b.cloud.AllocatedVMs(spec.Name)
		if err != nil {
			continue // cannot happen: spec came from the catalog
		}
		cat.VMClusters = append(cat.VMClusters, VMClusterAvailability{
			Spec:         spec,
			AvailableVMs: spec.MaxVMs - allocated,
		})
	}
	for _, spec := range b.cloud.NFSClusters() {
		stored, err := b.cloud.StoredGB(spec.Name)
		if err != nil {
			continue
		}
		cat.NFSClusters = append(cat.NFSClusters, NFSClusterAvailability{
			Spec:        spec,
			AvailableGB: spec.CapacityGB - stored,
		})
	}
	return cat
}

// Submit validates and applies a reconfiguration request, recording it in
// the request log. Either the whole request applies or none of it does.
// Clusters are processed in sorted-name order so both the reported error
// (when several clusters are invalid) and the apply sequence are
// deterministic regardless of map iteration order.
func (b *Broker) Submit(req Request) error {
	vmNames := sortedKeys(req.VMTargets)
	nfsNames := sortedKeys(req.StorageGB)

	// Pre-validate against capacity so a partial failure cannot leave the
	// cloud half-reconfigured.
	vmSpecs := b.cloud.VMClusters()
	for _, name := range vmNames {
		target := req.VMTargets[name]
		found := false
		for _, s := range vmSpecs {
			if s.Name == name {
				found = true
				if target < 0 || target > s.MaxVMs {
					return fmt.Errorf("%w: cluster %q: %d VMs (capacity %d)", ErrCapacity, name, target, s.MaxVMs)
				}
			}
		}
		if !found {
			return fmt.Errorf("%w: VM cluster %q", ErrUnknownCluster, name)
		}
	}
	nfsSpecs := b.cloud.NFSClusters()
	for _, name := range nfsNames {
		gb := req.StorageGB[name]
		found := false
		for _, s := range nfsSpecs {
			if s.Name == name {
				found = true
				if gb < 0 || gb > s.CapacityGB {
					return fmt.Errorf("%w: NFS cluster %q: %v GB (capacity %v)", ErrCapacity, name, gb, s.CapacityGB)
				}
			}
		}
		if !found {
			return fmt.Errorf("%w: NFS cluster %q", ErrUnknownCluster, name)
		}
	}

	for _, name := range vmNames {
		if err := b.cloud.SetVMs(req.Time, name, req.VMTargets[name]); err != nil {
			return err
		}
	}
	for _, name := range nfsNames {
		if err := b.cloud.SetStorage(req.Time, name, req.StorageGB[name]); err != nil {
			return err
		}
	}
	b.mu.Lock()
	b.log = append(b.log, req)
	b.mu.Unlock()
	return nil
}

// RequestLog returns a copy of all submitted requests, oldest first — the
// request monitor's audit trail.
func (b *Broker) RequestLog() []Request {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Request, len(b.log))
	copy(out, b.log)
	return out
}
